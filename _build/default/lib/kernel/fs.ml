type t = {
  paths : (string, int) Hashtbl.t;
  inodes : (int, string) Hashtbl.t;
  mutable next_ino : int;
}

let create () = { paths = Hashtbl.create 16; inodes = Hashtbl.create 16; next_ino = 2 }

let write_file t ~path content =
  match Hashtbl.find_opt t.paths path with
  | Some ino ->
    Hashtbl.replace t.inodes ino content;
    ino
  | None ->
    let ino = t.next_ino in
    t.next_ino <- ino + 1;
    Hashtbl.replace t.paths path ino;
    Hashtbl.replace t.inodes ino content;
    ino

let ino_of_path t path = Hashtbl.find_opt t.paths path

let content_of_ino t ino = Hashtbl.find_opt t.inodes ino

let read_file t ~path = Option.bind (ino_of_path t path) (content_of_ino t)

let remove t ~path =
  match Hashtbl.find_opt t.paths path with
  | None -> false
  | Some ino ->
    Hashtbl.remove t.paths path;
    Hashtbl.remove t.inodes ino;
    true

let exists t ~path = Hashtbl.mem t.paths path

let list_paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.paths [] |> List.sort compare
