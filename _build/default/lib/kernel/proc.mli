(** Per-process state: page table and heap-allocator bookkeeping.

    The types are transparent because {!Kernel} is the only intended
    manipulator; user code should go through the kernel's syscall facade. *)

type present = {
  mutable pfn : int;
  mutable cow : bool;  (** write must copy while the frame is shared *)
  mutable locked : bool;  (** mlocked: never selected for swap-out *)
}

type pte =
  | Present of present
  | Swapped of int  (** slot number on the swap device *)

type t = {
  pid : int;
  name : string;
  parent : int option;
  page_table : (int, pte) Hashtbl.t;  (** vpn -> pte *)
  mutable brk : int;  (** heap end as a byte offset from {!heap_base} *)
  mutable heap_pages : int;  (** number of mapped heap pages *)
  mutable free_list : (int * int) list;
      (** freed (offset, size) runs inside the heap, offset-sorted, merged *)
  allocs : (int, int) Hashtbl.t;  (** live allocation offset -> size *)
  mutable alive : bool;
}

val heap_base : int
(** Virtual byte address where every process's heap starts. *)

val create : pid:int -> name:string -> parent:int option -> t

val mapped_vpns : t -> int list
(** All mapped virtual page numbers, sorted (deterministic iteration). *)

val find_pte : t -> vpn:int -> pte option

(** {1 Heap free-list bookkeeping} *)

val straddles : page_size:int -> off:int -> size:int -> bool
(** Would a sub-page allocation at [off] cross a page boundary? *)

val take_free_run : t -> size:int -> page_size:int -> int option
(** First-fit: carve [size] bytes out of a free run and return the offset.
    Like a slab allocator, a sub-page allocation is never placed straddling
    a page boundary (so key material always lies within one frame, which is
    what lets a physical-memory scan see whole patterns — the paper's LKM
    relies on the same property of the real allocators). *)

val take_free_run_aligned : t -> size:int -> align:int -> int option
(** First-fit for an [align]-aligned placement (used by posix_memalign so
    that repeatedly allocated and freed key regions recycle their pages). *)

val insert_free_run : t -> off:int -> size:int -> unit
(** Return a run to the free list, merging with adjacent runs. *)

val heap_bytes_free : t -> int
