type present = { mutable pfn : int; mutable cow : bool; mutable locked : bool }

type pte = Present of present | Swapped of int

type t = {
  pid : int;
  name : string;
  parent : int option;
  page_table : (int, pte) Hashtbl.t;
  mutable brk : int;
  mutable heap_pages : int;
  mutable free_list : (int * int) list;
  allocs : (int, int) Hashtbl.t;
  mutable alive : bool;
}

(* Heap starts high enough that vpn 0 stays unmapped (null-page tradition). *)
let heap_base = 16 * 4096

let create ~pid ~name ~parent =
  { pid;
    name;
    parent;
    page_table = Hashtbl.create 64;
    brk = 0;
    heap_pages = 0;
    free_list = [];
    allocs = Hashtbl.create 32;
    alive = true
  }

let mapped_vpns t = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.page_table [] |> List.sort compare

let find_pte t ~vpn = Hashtbl.find_opt t.page_table vpn

let straddles ~page_size ~off ~size =
  size <= page_size && off / page_size <> (off + size - 1) / page_size

let take_free_run t ~size ~page_size =
  let rec go acc runs =
    match runs with
    | [] -> None
    | (off, run_size) :: rest ->
      (* first candidate placement inside this run that does not straddle *)
      let candidate =
        if straddles ~page_size ~off ~size then (off / page_size * page_size) + page_size
        else off
      in
      if candidate + size <= off + run_size then begin
        let before = if candidate > off then [ (off, candidate - off) ] else [] in
        let after_off = candidate + size in
        let after =
          if after_off < off + run_size then [ (after_off, off + run_size - after_off) ] else []
        in
        t.free_list <- List.rev_append acc (before @ after @ rest);
        Some candidate
      end
      else go ((off, run_size) :: acc) rest
  in
  go [] t.free_list

let insert_free_run t ~off ~size =
  if size <= 0 then invalid_arg "Proc.insert_free_run: non-positive size";
  (* keep the list offset-sorted and merge adjacent runs *)
  let rec place runs =
    match runs with
    | [] -> [ (off, size) ]
    | (o, s) :: rest ->
      if off + size < o then (off, size) :: runs
      else if off + size = o then (off, size + s) :: rest
      else if o + s = off then place_merged (o, s + size) rest
      else if off > o + s then (o, s) :: place rest
      else invalid_arg "Proc.insert_free_run: overlapping free (double free?)"
  and place_merged (o, s) rest =
    match rest with
    | (o2, s2) :: rest2 when o + s = o2 -> (o, s + s2) :: rest2
    | _ -> (o, s) :: rest
  in
  t.free_list <- place t.free_list

let take_free_run_aligned t ~size ~align =
  let rec go acc runs =
    match runs with
    | [] -> None
    | (off, run_size) :: rest ->
      let candidate = (off + align - 1) / align * align in
      if candidate + size <= off + run_size then begin
        let before = if candidate > off then [ (off, candidate - off) ] else [] in
        let after_off = candidate + size in
        let after =
          if after_off < off + run_size then [ (after_off, off + run_size - after_off) ] else []
        in
        t.free_list <- List.rev_append acc (before @ after @ rest);
        Some candidate
      end
      else go ((off, run_size) :: acc) rest
  in
  go [] t.free_list

let heap_bytes_free t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list
