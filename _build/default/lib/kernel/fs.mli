(** A minimal in-memory filesystem.

    File content *at rest* is held in ordinary OCaml strings — it models the
    disk, which is outside physical RAM and outside the scanner's and the
    attacks' view.  Content only becomes observable once it is read through
    the kernel, which pulls it into page-cache frames and user buffers
    inside simulated RAM. *)

type t

val create : unit -> t

val write_file : t -> path:string -> string -> int
(** Create or replace a file; returns its inode number. *)

val read_file : t -> path:string -> string option

val ino_of_path : t -> string -> int option

val content_of_ino : t -> int -> string option

val remove : t -> path:string -> bool

val exists : t -> path:string -> bool

val list_paths : t -> string list
