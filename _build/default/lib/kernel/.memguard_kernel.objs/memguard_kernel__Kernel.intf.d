lib/kernel/kernel.mli: Fs Memguard_vmm Page_cache Proc Swap
