lib/kernel/kernel.ml: Array Buddy Buffer Bytes Char Fs Hashtbl List Memguard_crypto Memguard_vmm Option Page Page_cache Phys_mem Printf Proc String Swap
