lib/kernel/swap.ml: Array Bytes String
