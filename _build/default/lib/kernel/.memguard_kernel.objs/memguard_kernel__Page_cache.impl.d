lib/kernel/page_cache.ml: Buddy Hashtbl List Memguard_vmm Page Phys_mem String
