lib/kernel/proc.mli: Hashtbl
