lib/kernel/swap.mli:
