lib/kernel/fs.ml: Hashtbl List Option
