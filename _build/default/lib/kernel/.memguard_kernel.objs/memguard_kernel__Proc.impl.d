lib/kernel/proc.ml: Hashtbl List
