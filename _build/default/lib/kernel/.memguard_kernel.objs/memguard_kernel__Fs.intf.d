lib/kernel/fs.mli:
