lib/kernel/page_cache.mli: Memguard_vmm
