(** An SSHv2-style key exchange, the handshake the simulated OpenSSH runs
    per connection: a Diffie–Hellman agreement whose exchange hash the
    server *signs with its long-term RSA host key* — the single use of the
    private key the paper's attacks target.

    The client runs on a remote machine (its memory is plain OCaml and out
    of the attacks' reach); the server side lives in simulated process
    memory.  The server's ephemeral DH secret is zeroized after the
    exchange (OpenSSH calls BN_clear on kex state), but the derived session
    keys stay resident for the life of the connection — a second class of
    in-memory secret beyond the paper's scope that the scanner can equally
    hunt (see [examples/session_keys.ml]). *)

open Memguard_kernel

type session = {
  session_id : string;  (** exchange hash (public) *)
  keys_addr : int;  (** vaddr of the derived key material in server memory *)
  keys_len : int;
}

val key_material : Kernel.t -> Proc.t -> session -> string
(** Read the session keys back out of server memory. *)

val server_handshake :
  Memguard_util.Prng.t ->
  Kernel.t ->
  Proc.t ->
  host_key:Memguard_ssl.Sim_rsa.t ->
  ?group:Memguard_crypto.Dh.params ->
  unit ->
  session
(** Run the whole exchange (both ends; the client end verifies the host
    signature and asserts both sides derived identical keys).  Raises on a
    host key that fails to sign correctly. *)

val close : Kernel.t -> Proc.t -> session -> unit
(** Connection teardown: the session-key buffer is freed — uncleared, as in
    the era's code. *)
