open Memguard_kernel
module Bn = Memguard_bignum.Bn
module Md5 = Memguard_crypto.Md5
module Aes = Memguard_crypto.Aes
module Rsa = Memguard_crypto.Rsa
module Sim_rsa = Memguard_ssl.Sim_rsa
module Prng = Memguard_util.Prng

type session = {
  master_addr : int;
  master_len : int;
  key_block_addr : int;
  key_block_len : int;
  mutable seq : int;
}

(* the SSL3/TLS1.0-flavoured PRF, MD5 half only (era-appropriate) *)
let prf ~secret ~label ~seed ~length =
  let buf = Buffer.create length in
  let a = ref seed in
  while Buffer.length buf < length do
    a := Md5.digest (secret ^ !a);
    Buffer.add_string buf (Md5.digest (secret ^ !a ^ label ^ seed))
  done;
  String.sub (Buffer.contents buf) 0 length

let server_handshake rng k proc ~cert_key =
  let n = cert_key.Sim_rsa.pub.Rsa.n in
  let client_random = Bytes.to_string (Prng.bytes rng 16) in
  let server_random = Bytes.to_string (Prng.bytes rng 16) in
  (* client: premaster secret, RSA-encrypted to the certificate key *)
  let premaster_bn = Bn.random_below rng n in
  let encrypted = Rsa.encrypt_raw cert_key.Sim_rsa.pub premaster_bn in
  (* server: THE private-key operation *)
  let premaster = Sim_rsa.private_op k proc cert_key encrypted in
  assert (Bn.equal premaster premaster_bn);
  let pm_bytes = Bn.to_bytes_be premaster in
  (* the decrypted premaster transits a server buffer; ssl3 memsets it
     after deriving the master secret *)
  let pm_buf = Kernel.malloc k proc (max 1 (String.length pm_bytes)) in
  Kernel.write_mem k proc ~addr:pm_buf pm_bytes;
  let master = prf ~secret:pm_bytes ~label:"master secret" ~seed:(client_random ^ server_random) ~length:24 in
  Kernel.zero_mem k proc ~addr:pm_buf ~len:(String.length pm_bytes);
  Kernel.free k proc pm_buf;
  (* master secret and key block stay resident server-side *)
  let master_addr = Kernel.malloc k proc (String.length master) in
  Kernel.write_mem k proc ~addr:master_addr master;
  let key_block =
    prf ~secret:master ~label:"key expansion" ~seed:(server_random ^ client_random) ~length:32
  in
  let key_block_addr = Kernel.malloc k proc (String.length key_block) in
  Kernel.write_mem k proc ~addr:key_block_addr key_block;
  (* client end derives the same material (from its own premaster copy) *)
  let client_master =
    prf ~secret:pm_bytes ~label:"master secret" ~seed:(client_random ^ server_random) ~length:24
  in
  assert (String.equal master client_master);
  { master_addr;
    master_len = String.length master;
    key_block_addr;
    key_block_len = String.length key_block;
    seq = 0
  }

let record_key k proc s =
  let block = Kernel.read_mem k proc ~addr:s.key_block_addr ~len:s.key_block_len in
  String.sub block 0 16

let iv_for s ~seq = Md5.digest (Printf.sprintf "iv-%d-%d" s.key_block_addr seq)

let seal k proc s payload =
  let key = record_key k proc s in
  let iv = iv_for s ~seq:s.seq in
  let sealed = Aes.cbc_encrypt ~key ~iv payload in
  s.seq <- s.seq + 1;
  sealed

let open_record k proc s ~seq data =
  let key = record_key k proc s in
  Aes.cbc_decrypt ~key ~iv:(iv_for s ~seq) data

let close k proc s =
  Kernel.free k proc s.master_addr;
  Kernel.free k proc s.key_block_addr
