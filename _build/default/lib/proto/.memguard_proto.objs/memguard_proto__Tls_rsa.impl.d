lib/proto/tls_rsa.ml: Buffer Bytes Kernel Memguard_bignum Memguard_crypto Memguard_kernel Memguard_ssl Memguard_util Printf String
