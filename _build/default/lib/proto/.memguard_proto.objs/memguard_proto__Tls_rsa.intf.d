lib/proto/tls_rsa.mli: Kernel Memguard_kernel Memguard_ssl Memguard_util Proc
