lib/proto/ssh_kex.ml: Kernel Memguard_bignum Memguard_crypto Memguard_kernel Memguard_ssl Memguard_util String
