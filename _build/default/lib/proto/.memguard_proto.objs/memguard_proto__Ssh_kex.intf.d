lib/proto/ssh_kex.mli: Kernel Memguard_crypto Memguard_kernel Memguard_ssl Memguard_util Proc
