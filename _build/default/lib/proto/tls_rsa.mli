(** A TLS-style RSA key exchange plus record layer — what the simulated
    Apache/mod_ssl runs per HTTPS connection.

    The client encrypts a premaster secret to the server certificate's RSA
    key; the server's [private_op] (the paper's target operation) recovers
    it, both sides derive a master secret and a key block with the MD5-era
    PRF, and application data flows AES-128-CBC-protected.  The server-side
    master secret and key block are resident in simulated memory for the
    session's lifetime. *)

open Memguard_kernel

type session = {
  master_addr : int;  (** server-memory vaddr of the master secret *)
  master_len : int;
  key_block_addr : int;
  key_block_len : int;
  mutable seq : int;  (** record sequence number (drives per-record IVs) *)
}

val server_handshake :
  Memguard_util.Prng.t ->
  Kernel.t ->
  Proc.t ->
  cert_key:Memguard_ssl.Sim_rsa.t ->
  session
(** Full exchange; the client end checks that both sides derived the same
    key block. *)

val seal : Kernel.t -> Proc.t -> session -> string -> string
(** Encrypt one application record with the session's server-write key
    (read out of simulated memory, as the real cipher would). *)

val open_record : Kernel.t -> Proc.t -> session -> seq:int -> string -> (string, string) result
(** Decrypt a record sealed at sequence number [seq]. *)

val close : Kernel.t -> Proc.t -> session -> unit
(** Free the session secrets (uncleared, as the era's teardown did). *)
