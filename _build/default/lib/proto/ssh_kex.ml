open Memguard_kernel
module Bn = Memguard_bignum.Bn
module Dh = Memguard_crypto.Dh
module Sha1 = Memguard_crypto.Sha1
module Rsa = Memguard_crypto.Rsa
module Sim_rsa = Memguard_ssl.Sim_rsa
module Prng = Memguard_util.Prng

type session = { session_id : string; keys_addr : int; keys_len : int }

let key_material k proc s = Kernel.read_mem k proc ~addr:s.keys_addr ~len:s.keys_len

let derive_keys ~shared ~session_id =
  (* SSH derives IVs/keys as HASH(K || H || letter || session_id); one
     SHA-1 block per direction, truncated to 16 bytes each here *)
  let k = Bn.to_bytes_be shared in
  String.sub (Sha1.digest (k ^ "A" ^ session_id)) 0 16
  ^ String.sub (Sha1.digest (k ^ "B" ^ session_id)) 0 16

let server_handshake rng k proc ~host_key ?(group = Dh.group_small) () =
  (* client side (remote machine, plain OCaml values) *)
  let client = Dh.generate_keypair rng group in
  (* server side: the ephemeral secret transits server memory *)
  let server = Dh.generate_keypair rng group in
  let secret_bytes = Bn.to_bytes_be server.Dh.secret in
  let secret_buf = Kernel.malloc k proc (String.length secret_bytes) in
  Kernel.write_mem k proc ~addr:secret_buf secret_bytes;
  let shared =
    Dh.shared_secret group ~secret:server.Dh.secret ~peer_public:client.Dh.public
  in
  (* exchange hash H = hash(client_pub || server_pub || K) *)
  let session_id =
    Sha1.digest
      (Bn.to_bytes_be client.Dh.public ^ Bn.to_bytes_be server.Dh.public
      ^ Bn.to_bytes_be shared)
  in
  (* the server SIGNS H with the long-term host key — the private-key
     operation the paper's attacks are after *)
  let h_bn = Bn.rem (Bn.of_bytes_be session_id) host_key.Sim_rsa.pub.Rsa.n in
  let signature = Sim_rsa.private_op k proc host_key h_bn in
  (* client: verify the host signature and derive the same keys *)
  if not (Rsa.verify_raw host_key.Sim_rsa.pub ~msg:h_bn ~signature) then
    failwith "Ssh_kex: host signature verification failed";
  let client_shared =
    Dh.shared_secret group ~secret:client.Dh.secret ~peer_public:server.Dh.public
  in
  assert (Bn.equal shared client_shared);
  let keys = derive_keys ~shared ~session_id in
  assert (String.equal keys (derive_keys ~shared:client_shared ~session_id));
  (* OpenSSH clears its kex secrets promptly... *)
  Kernel.zero_mem k proc ~addr:secret_buf ~len:(String.length secret_bytes);
  Kernel.free k proc secret_buf;
  (* ...but the session keys live for the duration of the connection *)
  let keys_addr = Kernel.malloc k proc (String.length keys) in
  Kernel.write_mem k proc ~addr:keys_addr keys;
  { session_id; keys_addr; keys_len = String.length keys }

let close k proc s =
  (* era-typical teardown: free without clearing *)
  Kernel.free k proc s.keys_addr
