(** A small DER (ASN.1 Distinguished Encoding Rules) codec — just the subset
    PKCS#1 needs: INTEGER, OCTET STRING, and SEQUENCE. *)

type t =
  | Integer of Memguard_bignum.Bn.t
  | Octet_string of string
  | Sequence of t list

val encode : t -> string
(** DER encoding.  INTEGERs use minimal two's-complement form. *)

val decode : string -> (t, string) result
(** Parse a complete DER value; trailing bytes are an error. *)

val decode_exn : string -> t
(** Like {!decode}; raises [Invalid_argument] on error. *)

val pp : Format.formatter -> t -> unit
