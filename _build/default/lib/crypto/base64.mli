(** RFC 4648 base64, as used by PEM. *)

val encode : string -> string
(** Standard alphabet, with [=] padding, no line breaks. *)

val encode_wrapped : ?width:int -> string -> string
(** Like {!encode} but broken into lines of [width] (default 64) characters,
    each terminated by ['\n'] — the PEM body format. *)

val decode : string -> (string, string) result
(** Inverse of {!encode}.  Whitespace (spaces, tabs, newlines) is skipped.
    Returns [Error _] on invalid characters or bad padding. *)

val decode_exn : string -> string
(** Like {!decode}; raises [Invalid_argument] on error. *)
