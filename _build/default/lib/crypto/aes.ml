(* AES-128, byte-oriented (FIPS 197).  Table-free except the S-boxes, which
   are generated at module init from the GF(2^8) inverse. *)

let xtime b = if b land 0x80 <> 0 then ((b lsl 1) lxor 0x1b) land 0xff else b lsl 1

let gmul a b =
  let acc = ref 0 in
  let a = ref a and b = ref b in
  for _ = 0 to 7 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc land 0xff

let sbox, inv_sbox =
  (* multiplicative inverse table by brute force (256^2 at init is free) *)
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gmul a b = 1 then inv.(a) <- b
    done
  done;
  let s = Array.make 256 0 and si = Array.make 256 0 in
  for x = 0 to 255 do
    let i = inv.(x) in
    let rot v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
    let y = i lxor rot i 1 lxor rot i 2 lxor rot i 3 lxor rot i 4 lxor 0x63 in
    s.(x) <- y;
    si.(y) <- x
  done;
  (s, si)

type key = int array array
(* 11 round keys of 16 bytes each *)

let expand_key keystr =
  if String.length keystr <> 16 then invalid_arg "Aes.expand_key: key must be 16 bytes";
  let w = Array.make 44 0 in
  (* 32-bit words, big-endian byte order within the word *)
  for i = 0 to 3 do
    w.(i) <-
      (Char.code keystr.[4 * i] lsl 24)
      lor (Char.code keystr.[(4 * i) + 1] lsl 16)
      lor (Char.code keystr.[(4 * i) + 2] lsl 8)
      lor Char.code keystr.[(4 * i) + 3]
  done;
  let sub_word v =
    (sbox.((v lsr 24) land 0xff) lsl 24)
    lor (sbox.((v lsr 16) land 0xff) lsl 16)
    lor (sbox.((v lsr 8) land 0xff) lsl 8)
    lor sbox.(v land 0xff)
  in
  let rot_word v = ((v lsl 8) lor (v lsr 24)) land 0xFFFFFFFF in
  let rcon = ref 1 in
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        let t = sub_word (rot_word temp) lxor (!rcon lsl 24) in
        rcon := xtime !rcon;
        t
      end
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp
  done;
  Array.init 11 (fun round ->
      Array.init 16 (fun b ->
          let word = w.((round * 4) + (b / 4)) in
          (word lsr (8 * (3 - (b mod 4)))) land 0xff))

(* state is a 16-element int array in column-major order (FIPS layout:
   state[r + 4c] = input[4c + r], i.e. input bytes fill columns) *)

let add_round_key state rk = Array.iteri (fun i v -> state.(i) <- v lxor rk.(i)) (Array.copy state)

let sub_bytes state = Array.iteri (fun i v -> state.(i) <- sbox.(v)) (Array.copy state)
let inv_sub_bytes state = Array.iteri (fun i v -> state.(i) <- inv_sbox.(v)) (Array.copy state)

(* with our layout state.(4*c + r), ShiftRows rotates bytes r across columns *)
let shift_rows state =
  let old = Array.copy state in
  for r = 0 to 3 do
    for c = 0 to 3 do
      state.((4 * c) + r) <- old.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows state =
  let old = Array.copy state in
  for r = 0 to 3 do
    for c = 0 to 3 do
      state.((4 * ((c + r) mod 4)) + r) <- old.((4 * c) + r)
    done
  done

(* per-constant multiplication tables: MixColumns runs per record byte *)
let mul_table c = Array.init 256 (fun x -> gmul x c)

let m2 = mul_table 2
let m3 = mul_table 3
let m9 = mul_table 9
let m11 = mul_table 11
let m13 = mul_table 13
let m14 = mul_table 14

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) and a2 = state.((4 * c) + 2)
    and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- m2.(a0) lxor m3.(a1) lxor a2 lxor a3;
    state.((4 * c) + 1) <- a0 lxor m2.(a1) lxor m3.(a2) lxor a3;
    state.((4 * c) + 2) <- a0 lxor a1 lxor m2.(a2) lxor m3.(a3);
    state.((4 * c) + 3) <- m3.(a0) lxor a1 lxor a2 lxor m2.(a3)
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) and a2 = state.((4 * c) + 2)
    and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- m14.(a0) lxor m11.(a1) lxor m13.(a2) lxor m9.(a3);
    state.((4 * c) + 1) <- m9.(a0) lxor m14.(a1) lxor m11.(a2) lxor m13.(a3);
    state.((4 * c) + 2) <- m13.(a0) lxor m9.(a1) lxor m14.(a2) lxor m11.(a3);
    state.((4 * c) + 3) <- m11.(a0) lxor m13.(a1) lxor m9.(a2) lxor m14.(a3)
  done

let state_of_block block = Array.init 16 (fun i -> Char.code block.[i])
let block_of_state state = String.init 16 (fun i -> Char.chr state.(i))

let encrypt_block rk block =
  if String.length block <> 16 then invalid_arg "Aes.encrypt_block: block must be 16 bytes";
  let state = state_of_block block in
  add_round_key state rk.(0);
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state rk.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state rk.(10);
  block_of_state state

let decrypt_block rk block =
  if String.length block <> 16 then invalid_arg "Aes.decrypt_block: block must be 16 bytes";
  let state = state_of_block block in
  add_round_key state rk.(10);
  inv_shift_rows state;
  inv_sub_bytes state;
  for round = 9 downto 1 do
    add_round_key state rk.(round);
    inv_mix_columns state;
    inv_shift_rows state;
    inv_sub_bytes state
  done;
  add_round_key state rk.(0);
  block_of_state state

let xor_block a b = String.init 16 (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let cbc_encrypt ~key ~iv plaintext =
  if String.length iv <> 16 then invalid_arg "Aes.cbc_encrypt: iv must be 16 bytes";
  let rk = expand_key key in
  let pad = 16 - (String.length plaintext mod 16) in
  let padded = plaintext ^ String.make pad (Char.chr pad) in
  let out = Buffer.create (String.length padded) in
  let prev = ref iv in
  for i = 0 to (String.length padded / 16) - 1 do
    let block = xor_block (String.sub padded (16 * i) 16) !prev in
    let c = encrypt_block rk block in
    Buffer.add_string out c;
    prev := c
  done;
  Buffer.contents out

let cbc_decrypt ~key ~iv ciphertext =
  if String.length iv <> 16 then invalid_arg "Aes.cbc_decrypt: iv must be 16 bytes";
  let n = String.length ciphertext in
  if n = 0 || n mod 16 <> 0 then Error "ciphertext length not a positive multiple of 16"
  else begin
    let rk = expand_key key in
    let out = Buffer.create n in
    let prev = ref iv in
    for i = 0 to (n / 16) - 1 do
      let c = String.sub ciphertext (16 * i) 16 in
      Buffer.add_string out (xor_block (decrypt_block rk c) !prev);
      prev := c
    done;
    let padded = Buffer.contents out in
    let pad = Char.code padded.[n - 1] in
    if pad < 1 || pad > 16 then Error "bad padding"
    else begin
      let ok = ref true in
      for i = n - pad to n - 1 do
        if Char.code padded.[i] <> pad then ok := false
      done;
      if !ok then Ok (String.sub padded 0 (n - pad)) else Error "bad padding"
    end
  end
