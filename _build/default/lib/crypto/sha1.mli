(** SHA-1 (FIPS 180-1) — the exchange-hash and key-derivation digest of the
    SSHv2 protocol the simulated OpenSSH speaks.  Like {!Md5}, here for
    protocol fidelity, not for new designs. *)

val digest : string -> string
(** 20-byte raw digest. *)

val hex_digest : string -> string
(** Lowercase hex, 40 characters. *)
