(** AES-128 (FIPS 197), with CBC mode and PKCS#7 padding — what protects
    the PEM key file *at rest*.  One of the paper's implicit points is that
    encryption at rest does nothing for the in-memory problem: the moment
    the server starts, the plaintext key (and the passphrase used here)
    must appear in RAM.  See [Ssl.load_private_key ~passphrase]. *)

type key

val expand_key : string -> key
(** 16-byte key.  Raises [Invalid_argument] otherwise. *)

val encrypt_block : key -> string -> string
(** One 16-byte block. *)

val decrypt_block : key -> string -> string

val cbc_encrypt : key:string -> iv:string -> string -> string
(** PKCS#7-padded CBC over arbitrary-length plaintext.  [iv] is 16 bytes.
    Output length is a multiple of 16, strictly larger than the input. *)

val cbc_decrypt : key:string -> iv:string -> string -> (string, string) result
(** Inverse; [Error _] on bad length or bad padding (e.g. wrong key). *)
