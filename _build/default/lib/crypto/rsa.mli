(** Textbook RSA with CRT, PKCS#1 RSAPrivateKey serialization, and keygen —
    the role OpenSSL 0.9.7i plays in the paper.

    No padding schemes: the paper's attacks and countermeasures concern where
    key *material* lives in memory, and raw modexp exercises exactly the same
    key parts (d, p, q, dp, dq, qinv) as a padded operation would. *)

open Memguard_bignum

type public = { n : Bn.t; e : Bn.t }

type priv = {
  n : Bn.t;
  e : Bn.t;
  d : Bn.t;
  p : Bn.t;
  q : Bn.t;
  dp : Bn.t;  (** d mod (p-1) *)
  dq : Bn.t;  (** d mod (q-1) *)
  qinv : Bn.t;  (** q^-1 mod p *)
}

val pem_label : string
(** ["RSA PRIVATE KEY"]. *)

val generate : ?e:int -> Memguard_util.Prng.t -> bits:int -> priv
(** [generate rng ~bits] makes a fresh key with an exactly-[bits]-bit modulus.
    [e] defaults to 65537.  Requires [bits >= 32] and even. *)

val public_of_priv : priv -> public

val validate : priv -> (unit, string) result
(** Consistency check of all CRT components. *)

val encrypt_raw : public -> Bn.t -> Bn.t
(** [m^e mod n]; requires [0 <= m < n]. *)

val decrypt_raw : ?crt:bool -> priv -> Bn.t -> Bn.t
(** [c^d mod n] via CRT by default (as OpenSSL does); [~crt:false] uses the
    plain exponent. *)

val sign_raw : ?crt:bool -> priv -> Bn.t -> Bn.t
(** Same computation as {!decrypt_raw} (raw RSA is symmetric). *)

val verify_raw : public -> msg:Bn.t -> signature:Bn.t -> bool

val der_of_priv : priv -> string
(** PKCS#1 [RSAPrivateKey ::= SEQUENCE { version, n, e, d, p, q, dp, dq, qinv }]. *)

val priv_of_der : string -> (priv, string) result

val pem_of_priv : priv -> string

val priv_of_pem : string -> (priv, string) result

val pem_of_priv_encrypted : passphrase:string -> iv:string -> priv -> string
(** Traditional OpenSSL encrypted key file (AES-128-CBC, 16-byte [iv]). *)

val priv_of_pem_encrypted : passphrase:string -> string -> (priv, string) result

(** {1 Key-part byte patterns}

    The scanner and the attacks search physical memory for these big-endian
    magnitudes; finding any one of them compromises the key (Section 2 of the
    paper: d, p, q, or the PEM file each count as "a copy of the private
    key"). *)

val pattern_d : priv -> string
val pattern_p : priv -> string
val pattern_q : priv -> string

val equal_priv : priv -> priv -> bool
val pp_priv : Format.formatter -> priv -> unit
