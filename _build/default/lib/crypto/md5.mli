(** MD5 (RFC 1321) — needed for OpenSSL's [EVP_BytesToKey] derivation of
    PEM encryption keys (the 0.9.7-era scheme), and handy for key
    fingerprints.  Not for new designs, obviously. *)

val digest : string -> string
(** 16-byte raw digest. *)

val hex_digest : string -> string
(** Lowercase hex, 32 characters. *)

val bytes_to_key : passphrase:string -> salt:string -> length:int -> string
(** OpenSSL [EVP_BytesToKey] with MD5, count=1: concatenated
    [D_1 = MD5(pass||salt)], [D_i = MD5(D_{i-1}||pass||salt)] truncated to
    [length] bytes.  [salt] is normally the first 8 bytes of the IV. *)
