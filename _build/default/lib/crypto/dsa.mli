(** DSA (FIPS 186-style), the other host-key algorithm an OpenSSH server of
    the paper's era offered.  Included to show the countermeasures are
    key-type agnostic: the secret exponent [x] is one more byte pattern
    that must not flood memory (see [Memguard_ssl.Sim_dsa]). *)

open Memguard_bignum

type params = {
  p : Bn.t;  (** prime modulus *)
  q : Bn.t;  (** prime divisor of p-1 *)
  g : Bn.t;  (** generator of the order-q subgroup *)
}

type priv = { params : params; x : Bn.t; y : Bn.t }

type public = { params : params; y : Bn.t }

val pem_label : string
(** ["DSA PRIVATE KEY"]. *)

val generate_params : Memguard_util.Prng.t -> pbits:int -> qbits:int -> params
(** Requires [qbits < pbits], [qbits >= 32]. *)

val validate_params : params -> (unit, string) result

val generate : Memguard_util.Prng.t -> params -> priv

val public_of_priv : priv -> public

val sign : Memguard_util.Prng.t -> priv -> Bn.t -> Bn.t * Bn.t
(** [(r, s)] over a message representative [0 <= m < q]. *)

val verify : public -> msg:Bn.t -> signature:Bn.t * Bn.t -> bool

val der_of_priv : priv -> string
(** OpenSSL's [DSAPrivateKey ::= SEQUENCE { 0, p, q, g, y, x }]. *)

val priv_of_der : string -> (priv, string) result

val pem_of_priv : priv -> string

val priv_of_pem : string -> (priv, string) result

val pattern_x : priv -> string
(** The secret exponent's big-endian magnitude — the scanner target. *)

val equal_priv : priv -> priv -> bool
