(** PEM armouring (RFC 7468 / classic OpenSSL style), used for the on-disk
    private key file — the "PEM-encoded private key" whose page-cache copy
    the paper tracks.

    Also supports the OpenSSL 0.9.7-era encrypted form
    ([Proc-Type: 4,ENCRYPTED] + [DEK-Info: AES-128-CBC,iv]), with the key
    derived from the passphrase by [EVP_BytesToKey]/MD5.  Encryption at
    rest protects the stolen *file* — not the memory the paper attacks. *)

val encode : label:string -> string -> string
(** [encode ~label der] wraps DER bytes in
    [-----BEGIN label-----] / [-----END label-----] armour. *)

val encode_encrypted : label:string -> passphrase:string -> iv:string -> string -> string
(** Traditional OpenSSL encrypted PEM (AES-128-CBC).  [iv] is 16 bytes. *)

val is_encrypted : string -> bool
(** Does the first PEM block carry [Proc-Type: 4,ENCRYPTED]? *)

val decode : ?label:string -> string -> (string, string) result
(** Extract and base64-decode the first PEM block.  When [label] is given
    the block's label must match exactly.  Encrypted blocks are an error
    (use {!decode_encrypted}). *)

val decode_encrypted : ?label:string -> passphrase:string -> string -> (string, string) result
(** Decrypt an encrypted block.  A wrong passphrase surfaces as a padding
    (or downstream parse) error, exactly as in OpenSSL. *)

val decode_exn : ?label:string -> string -> string
(** Like {!decode}; raises [Invalid_argument] on error. *)
