let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] and b2 = Char.code s.[!i + 2] in
    Buffer.add_char buf alphabet.[b0 lsr 2];
    Buffer.add_char buf alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char buf alphabet.[((b1 land 15) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char buf alphabet.[b2 land 63];
    i := !i + 3
  done;
  (match n - !i with
   | 1 ->
     let b0 = Char.code s.[!i] in
     Buffer.add_char buf alphabet.[b0 lsr 2];
     Buffer.add_char buf alphabet.[(b0 land 3) lsl 4];
     Buffer.add_string buf "=="
   | 2 ->
     let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
     Buffer.add_char buf alphabet.[b0 lsr 2];
     Buffer.add_char buf alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
     Buffer.add_char buf alphabet.[(b1 land 15) lsl 2];
     Buffer.add_char buf '='
   | _ -> ());
  Buffer.contents buf

let encode_wrapped ?(width = 64) s =
  let flat = encode s in
  let n = String.length flat in
  let buf = Buffer.create (n + (n / width) + 2) in
  let i = ref 0 in
  while !i < n do
    let len = min width (n - !i) in
    Buffer.add_substring buf flat !i len;
    Buffer.add_char buf '\n';
    i := !i + len
  done;
  Buffer.contents buf

let value_of_char c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let decode s =
  let buf = Buffer.create (String.length s * 3 / 4) in
  let acc = ref 0 and nbits = ref 0 and pad = ref 0 in
  let error = ref None in
  String.iter
    (fun c ->
      if !error = None then
        match c with
        | ' ' | '\t' | '\n' | '\r' -> ()
        | '=' -> incr pad
        | c -> (
          if !pad > 0 then error := Some "data after padding"
          else
            match value_of_char c with
            | None -> error := Some (Printf.sprintf "invalid base64 character %C" c)
            | Some v ->
              acc := (!acc lsl 6) lor v;
              nbits := !nbits + 6;
              if !nbits >= 8 then begin
                nbits := !nbits - 8;
                Buffer.add_char buf (Char.chr ((!acc lsr !nbits) land 0xff))
              end))
    s;
  match !error with
  | Some e -> Error e
  | None ->
    if !pad > 2 then Error "too much padding"
    else if !nbits = 6 then Error "truncated base64 quantum"
    else if (!nbits = 4 && !pad <> 2) || (!nbits = 2 && !pad <> 1) || (!nbits = 0 && !pad <> 0)
    then Error "bad padding"
    else if !acc land ((1 lsl !nbits) - 1) <> 0 then Error "non-zero trailing bits"
    else Ok (Buffer.contents buf)

let decode_exn s =
  match decode s with
  | Ok v -> v
  | Error e -> invalid_arg ("Base64.decode_exn: " ^ e)
