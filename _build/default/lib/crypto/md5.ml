(* RFC 1321, straightforward 32-bit implementation on native ints. *)

let mask = 0xFFFFFFFF

let s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

let k =
  [| 0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee; 0xf57c0faf; 0x4787c62a;
     0xa8304613; 0xfd469501; 0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
     0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821; 0xf61e2562; 0xc040b340;
     0x265e5a51; 0xe9b6c7aa; 0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
     0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed; 0xa9e3e905; 0xfcefa3f8;
     0x676f02d9; 0x8d2a4c8a; 0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
     0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70; 0x289b7ec6; 0xeaa127fa;
     0xd4ef3085; 0x04881d05; 0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
     0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039; 0x655b59c3; 0x8f0ccc92;
     0xffeff47d; 0x85845dd1; 0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
     0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391 |]

let rotl x c = ((x lsl c) lor (x lsr (32 - c))) land mask

let digest msg =
  let len = String.length msg in
  (* padding: 0x80, zeros, 64-bit little-endian bit length *)
  let padded_len = ((len + 8) / 64 * 64) + 64 in
  let buf = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set buf (padded_len - 8 + i) (Char.chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let a0 = ref 0x67452301 and b0 = ref 0xefcdab89 and c0 = ref 0x98badcfe and d0 = ref 0x10325476 in
  let m = Array.make 16 0 in
  for chunk = 0 to (padded_len / 64) - 1 do
    for j = 0 to 15 do
      let off = (chunk * 64) + (j * 4) in
      m.(j) <-
        Char.code (Bytes.get buf off)
        lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
        lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
        lor (Char.code (Bytes.get buf (off + 3)) lsl 24)
    done;
    let a = ref !a0 and b = ref !b0 and c = ref !c0 and d = ref !d0 in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then ((!b land !c) lor (lnot !b land !d) land mask, i)
        else if i < 32 then ((!d land !b) lor (lnot !d land !c) land mask, ((5 * i) + 1) mod 16)
        else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) mod 16)
        else (!c lxor (!b lor (lnot !d land mask)) land mask, (7 * i) mod 16)
      in
      let f = (f + !a + k.(i) + m.(g)) land mask in
      a := !d;
      d := !c;
      c := !b;
      b := (!b + rotl f s.(i)) land mask
    done;
    a0 := (!a0 + !a) land mask;
    b0 := (!b0 + !b) land mask;
    c0 := (!c0 + !c) land mask;
    d0 := (!d0 + !d) land mask
  done;
  let out = Bytes.create 16 in
  List.iteri
    (fun idx v ->
      for i = 0 to 3 do
        Bytes.set out ((idx * 4) + i) (Char.chr ((v lsr (8 * i)) land 0xff))
      done)
    [ !a0; !b0; !c0; !d0 ];
  Bytes.unsafe_to_string out

let hex_digest msg = Memguard_util.Bytes_util.hex_of_string (digest msg)

let bytes_to_key ~passphrase ~salt ~length =
  let buf = Buffer.create length in
  let d = ref "" in
  while Buffer.length buf < length do
    d := digest (!d ^ passphrase ^ salt);
    Buffer.add_string buf !d
  done;
  String.sub (Buffer.contents buf) 0 length
