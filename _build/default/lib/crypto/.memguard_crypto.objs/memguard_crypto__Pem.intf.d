lib/crypto/pem.mli:
