lib/crypto/rsa.ml: Asn1 Bn Format Memguard_bignum Pem Result String
