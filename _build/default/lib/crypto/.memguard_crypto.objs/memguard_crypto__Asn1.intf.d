lib/crypto/asn1.mli: Format Memguard_bignum
