lib/crypto/aes.mli:
