lib/crypto/pem.ml: Aes Base64 List Md5 Memguard_util Printf Result String
