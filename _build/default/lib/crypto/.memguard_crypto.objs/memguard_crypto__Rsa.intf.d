lib/crypto/rsa.mli: Bn Format Memguard_bignum Memguard_util
