lib/crypto/md5.ml: Array Buffer Bytes Char List Memguard_util String
