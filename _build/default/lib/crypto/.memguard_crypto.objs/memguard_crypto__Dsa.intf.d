lib/crypto/dsa.mli: Bn Memguard_bignum Memguard_util
