lib/crypto/sha1.ml: Array Bytes Char List Memguard_util String
