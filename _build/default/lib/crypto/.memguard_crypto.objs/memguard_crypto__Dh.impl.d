lib/crypto/dh.ml: Bn Memguard_bignum Memguard_util Result
