lib/crypto/dh.mli: Bn Memguard_bignum Memguard_util
