lib/crypto/base64.ml: Buffer Char Printf String
