lib/crypto/dsa.ml: Asn1 Bn Memguard_bignum Memguard_util Pem Result
