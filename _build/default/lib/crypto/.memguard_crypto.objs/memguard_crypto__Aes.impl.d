lib/crypto/aes.ml: Array Buffer Char String
