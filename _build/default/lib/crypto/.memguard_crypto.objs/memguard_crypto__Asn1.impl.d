lib/crypto/asn1.ml: Bn Char Format List Memguard_bignum Printf String
