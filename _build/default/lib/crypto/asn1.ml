open Memguard_bignum

type t =
  | Integer of Bn.t
  | Octet_string of string
  | Sequence of t list

let tag_integer = 0x02
let tag_octet_string = 0x04
let tag_sequence = 0x30

let encode_length n =
  if n < 0x80 then String.make 1 (Char.chr n)
  else begin
    let rec bytes acc v = if v = 0 then acc else bytes (Char.chr (v land 0xff) :: acc) (v lsr 8) in
    let bl = bytes [] n in
    let len_bytes = String.init (List.length bl) (List.nth bl) in
    String.make 1 (Char.chr (0x80 lor String.length len_bytes)) ^ len_bytes
  end

(* minimal two's complement encoding of an INTEGER *)
let encode_integer_body v =
  if Bn.is_zero v then "\000"
  else if Bn.sign v > 0 then begin
    let mag = Bn.to_bytes_be v in
    if Char.code mag.[0] land 0x80 <> 0 then "\000" ^ mag else mag
  end
  else begin
    (* two's complement: the minimal width w satisfies v >= -2^(8w-1) *)
    let w = ref 1 in
    while Bn.compare v (Bn.neg (Bn.shift_left Bn.one ((8 * !w) - 1))) < 0 do
      incr w
    done;
    let two_pow = Bn.shift_left Bn.one (8 * !w) in
    Bn.to_bytes_be_pad (Bn.add two_pow v) !w
  end

let rec encode v =
  match v with
  | Integer i ->
    let body = encode_integer_body i in
    String.make 1 (Char.chr tag_integer) ^ encode_length (String.length body) ^ body
  | Octet_string s ->
    String.make 1 (Char.chr tag_octet_string) ^ encode_length (String.length s) ^ s
  | Sequence items ->
    let body = String.concat "" (List.map encode items) in
    String.make 1 (Char.chr tag_sequence) ^ encode_length (String.length body) ^ body

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* returns (value, next_offset) *)
let rec parse s off =
  if off + 2 > String.length s then parse_error "truncated TLV header at %d" off;
  let tag = Char.code s.[off] in
  let len0 = Char.code s.[off + 1] in
  let len, body_off =
    if len0 < 0x80 then (len0, off + 2)
    else begin
      let nlen = len0 land 0x7f in
      if nlen = 0 then parse_error "indefinite length not allowed in DER";
      if nlen > 4 then parse_error "length too large";
      if off + 2 + nlen > String.length s then parse_error "truncated long length";
      let v = ref 0 in
      for i = 0 to nlen - 1 do
        v := (!v lsl 8) lor Char.code s.[off + 2 + i]
      done;
      if !v < 0x80 then parse_error "non-minimal long-form length";
      (!v, off + 2 + nlen)
    end
  in
  if body_off + len > String.length s then parse_error "value overruns input";
  let next = body_off + len in
  if tag = tag_integer then begin
    if len = 0 then parse_error "empty INTEGER";
    let body = String.sub s body_off len in
    if len >= 2 then begin
      let b0 = Char.code body.[0] and b1 = Char.code body.[1] in
      if (b0 = 0 && b1 land 0x80 = 0) || (b0 = 0xff && b1 land 0x80 <> 0) then
        parse_error "non-minimal INTEGER encoding"
    end;
    let v =
      if Char.code body.[0] land 0x80 = 0 then Bn.of_bytes_be body
      else
        (* negative: value = mag - 2^(8*len) *)
        Bn.sub (Bn.of_bytes_be body) (Bn.shift_left Bn.one (8 * len))
    in
    (Integer v, next)
  end
  else if tag = tag_octet_string then (Octet_string (String.sub s body_off len), next)
  else if tag = tag_sequence then begin
    let items = ref [] in
    let pos = ref body_off in
    while !pos < next do
      let v, p = parse s !pos in
      items := v :: !items;
      pos := p
    done;
    if !pos <> next then parse_error "sequence element overruns sequence";
    (Sequence (List.rev !items), next)
  end
  else parse_error "unsupported tag 0x%02x" tag

let decode s =
  match parse s 0 with
  | v, next -> if next <> String.length s then Error "trailing bytes after DER value" else Ok v
  | exception Parse_error e -> Error e

let decode_exn s =
  match decode s with
  | Ok v -> v
  | Error e -> invalid_arg ("Asn1.decode_exn: " ^ e)

let rec pp fmt v =
  match v with
  | Integer i -> Format.fprintf fmt "INTEGER %s" (Bn.to_dec i)
  | Octet_string s -> Format.fprintf fmt "OCTET STRING (%d bytes)" (String.length s)
  | Sequence items ->
    Format.fprintf fmt "SEQUENCE {@[<hv>%a@]}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
      items
