open Memguard_bignum
module Prng = Memguard_util.Prng

type params = { p : Bn.t; g : Bn.t }

let generate_params rng ~bits =
  if bits < 16 then invalid_arg "Dh.generate_params: too small";
  (* safe prime: p = 2q + 1 with q prime *)
  let rec find () =
    let q = Bn.gen_prime rng ~bits:(bits - 1) in
    let p = Bn.add (Bn.shift_left q 1) Bn.one in
    if Bn.is_probable_prime rng p then p else find ()
  in
  let p = find () in
  let rec find_g () =
    let h = Bn.add (Bn.random_below rng (Bn.sub p (Bn.of_int 3))) Bn.two in
    (* g = h^2 generates the order-q subgroup (quadratic residues) *)
    let g = Bn.mod_pow ~base:h ~exp:Bn.two ~modulus:p in
    if Bn.is_one g then find_g () else g
  in
  { p; g = find_g () }

let validate_params { p; g } =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let q = Bn.shift_right (Bn.sub p Bn.one) 1 in
  let* () = check (Bn.is_odd p) "p is even" in
  let* () = check (Bn.compare g Bn.one > 0 && Bn.compare g (Bn.sub p Bn.one) < 0) "g out of range" in
  let* () = check (Bn.is_one (Bn.mod_pow ~base:g ~exp:q ~modulus:p)) "g not in the q-subgroup" in
  Ok ()

(* pre-generated safe-prime groups (see generate_params); fast for tests *)
let group_small =
  { p = Bn.of_hex "c07fb2aa9db9c27fedbb1822dff7c873";
    g = Bn.of_hex "1246792399b379a8b459bd68aacc1e76"
  }

let group_medium =
  { p = Bn.of_hex "c0e21bd59f0cddf6ee623b6a13c873f170419dd0e7e35ed1a2e50eab169b3ffb";
    g = Bn.of_hex "af33b00c1ce3c4c1c0f3d0e3414e5f90265b7c20529899cd55f8fcfe40c26cba"
  }

type keypair = { secret : Bn.t; public : Bn.t }

let generate_keypair rng params =
  let secret = Bn.add (Bn.random_below rng (Bn.sub params.p (Bn.of_int 3))) Bn.two in
  { secret; public = Bn.mod_pow ~base:params.g ~exp:secret ~modulus:params.p }

let shared_secret params ~secret ~peer_public =
  if Bn.compare peer_public Bn.two < 0
     || Bn.compare peer_public (Bn.sub params.p Bn.two) > 0
  then invalid_arg "Dh.shared_secret: peer public out of range";
  Bn.mod_pow ~base:peer_public ~exp:secret ~modulus:params.p
