(* FIPS 180-1, 32-bit words on native ints. *)

let mask = 0xFFFFFFFF

let rotl x c = ((x lsl c) lor (x lsr (32 - c))) land mask

let digest msg =
  let len = String.length msg in
  let padded_len = ((len + 8) / 64 * 64) + 64 in
  let buf = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    (* big-endian length *)
    Bytes.set buf (padded_len - 1 - i) (Char.chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let h0 = ref 0x67452301 and h1 = ref 0xEFCDAB89 and h2 = ref 0x98BADCFE in
  let h3 = ref 0x10325476 and h4 = ref 0xC3D2E1F0 in
  let w = Array.make 80 0 in
  for chunk = 0 to (padded_len / 64) - 1 do
    for j = 0 to 15 do
      let off = (chunk * 64) + (j * 4) in
      w.(j) <-
        (Char.code (Bytes.get buf off) lsl 24)
        lor (Char.code (Bytes.get buf (off + 1)) lsl 16)
        lor (Char.code (Bytes.get buf (off + 2)) lsl 8)
        lor Char.code (Bytes.get buf (off + 3))
    done;
    for j = 16 to 79 do
      w.(j) <- rotl (w.(j - 3) lxor w.(j - 8) lxor w.(j - 14) lxor w.(j - 16)) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for j = 0 to 79 do
      let f, kc =
        if j < 20 then ((!b land !c) lor (lnot !b land !d) land mask, 0x5A827999)
        else if j < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
        else if j < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
        else (!b lxor !c lxor !d, 0xCA62C1D6)
      in
      let temp = (rotl !a 5 + f + !e + kc + w.(j)) land mask in
      e := !d;
      d := !c;
      c := rotl !b 30;
      b := !a;
      a := temp
    done;
    h0 := (!h0 + !a) land mask;
    h1 := (!h1 + !b) land mask;
    h2 := (!h2 + !c) land mask;
    h3 := (!h3 + !d) land mask;
    h4 := (!h4 + !e) land mask
  done;
  let out = Bytes.create 20 in
  List.iteri
    (fun idx v ->
      for i = 0 to 3 do
        Bytes.set out ((idx * 4) + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
      done)
    [ !h0; !h1; !h2; !h3; !h4 ];
  Bytes.unsafe_to_string out

let hex_digest msg = Memguard_util.Bytes_util.hex_of_string (digest msg)
