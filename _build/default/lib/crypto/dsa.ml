open Memguard_bignum
module Prng = Memguard_util.Prng

type params = { p : Bn.t; q : Bn.t; g : Bn.t }

type priv = { params : params; x : Bn.t; y : Bn.t }

type public = { params : params; y : Bn.t }

let pem_label = "DSA PRIVATE KEY"

let generate_params rng ~pbits ~qbits =
  if qbits < 32 || qbits >= pbits then invalid_arg "Dsa.generate_params: need 32 <= qbits < pbits";
  let q = Bn.gen_prime rng ~bits:qbits in
  (* p = 2*q*m + 1 of the right size *)
  let rec find_p () =
    let m = Bn.random_bits rng (pbits - qbits - 1) in
    let p = Bn.add (Bn.mul (Bn.mul Bn.two q) m) Bn.one in
    if Bn.bit_length p = pbits && Bn.is_probable_prime rng p then p else find_p ()
  in
  let p = find_p () in
  let e = Bn.div (Bn.sub p Bn.one) q in
  let rec find_g () =
    let h = Bn.add (Bn.random_below rng (Bn.sub p (Bn.of_int 3))) Bn.two in
    let g = Bn.mod_pow ~base:h ~exp:e ~modulus:p in
    if Bn.is_one g || Bn.is_zero g then find_g () else g
  in
  { p; q; g = find_g () }

let validate_params { p; q; g } =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (Bn.is_zero (Bn.rem (Bn.sub p Bn.one) q)) "q does not divide p-1" in
  let* () = check (Bn.compare g Bn.one > 0 && Bn.compare g p < 0) "g out of range" in
  let* () = check (Bn.is_one (Bn.mod_pow ~base:g ~exp:q ~modulus:p)) "g^q <> 1 mod p" in
  Ok ()

let generate rng params : priv =
  let x = Bn.add (Bn.random_below rng (Bn.sub params.q Bn.one)) Bn.one in
  { params; x; y = Bn.mod_pow ~base:params.g ~exp:x ~modulus:params.p }

let public_of_priv (k : priv) = { params = k.params; y = k.y }

let rec sign rng (k : priv) m =
  let { p; q; g } = k.params in
  if Bn.sign m < 0 || Bn.compare m q >= 0 then invalid_arg "Dsa.sign: message out of range";
  let kk = Bn.add (Bn.random_below rng (Bn.sub q Bn.one)) Bn.one in
  let r = Bn.rem (Bn.mod_pow ~base:g ~exp:kk ~modulus:p) q in
  if Bn.is_zero r then sign rng k m
  else begin
    match Bn.mod_inverse kk q with
    | None -> sign rng k m
    | Some kinv ->
      let s = Bn.rem (Bn.mul kinv (Bn.add m (Bn.mul k.x r))) q in
      if Bn.is_zero s then sign rng k m else (r, s)
  end

let verify pub ~msg ~signature:(r, s) =
  let { p; q; g } = pub.params in
  if Bn.sign r <= 0 || Bn.compare r q >= 0 || Bn.sign s <= 0 || Bn.compare s q >= 0 then false
  else if Bn.sign msg < 0 || Bn.compare msg q >= 0 then false
  else begin
    match Bn.mod_inverse s q with
    | None -> false
    | Some w ->
      let u1 = Bn.rem (Bn.mul msg w) q in
      let u2 = Bn.rem (Bn.mul r w) q in
      let v =
        Bn.rem
          (Bn.rem
             (Bn.mul (Bn.mod_pow ~base:g ~exp:u1 ~modulus:p)
                (Bn.mod_pow ~base:pub.y ~exp:u2 ~modulus:p))
             p)
          q
      in
      Bn.equal v r
  end

let der_of_priv (k : priv) =
  Asn1.encode
    (Asn1.Sequence
       [ Asn1.Integer Bn.zero;
         Asn1.Integer k.params.p;
         Asn1.Integer k.params.q;
         Asn1.Integer k.params.g;
         Asn1.Integer k.y;
         Asn1.Integer k.x
       ])

let priv_of_der der =
  match Asn1.decode der with
  | Error e -> Error ("bad DER: " ^ e)
  | Ok (Asn1.Sequence
          [ Asn1.Integer version; Asn1.Integer p; Asn1.Integer q; Asn1.Integer g;
            Asn1.Integer y; Asn1.Integer x ]) ->
    if not (Bn.is_zero version) then Error "unsupported DSAPrivateKey version"
    else Ok { params = { p; q; g }; x; y }
  | Ok _ -> Error "not a DSAPrivateKey structure"

let pem_of_priv k = Pem.encode ~label:pem_label (der_of_priv k)

let priv_of_pem text =
  match Pem.decode ~label:pem_label text with
  | Error e -> Error ("bad PEM: " ^ e)
  | Ok der -> priv_of_der der

let pattern_x k = Bn.to_bytes_be k.x

let equal_priv (a : priv) (b : priv) =
  Bn.equal a.params.p b.params.p && Bn.equal a.params.q b.params.q
  && Bn.equal a.params.g b.params.g && Bn.equal a.x b.x && Bn.equal a.y b.y
