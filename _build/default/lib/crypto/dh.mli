(** Finite-field Diffie–Hellman, as used by the SSHv2 key exchange the
    simulated OpenSSH performs (the host RSA key *signs* the exchange; the
    session secret comes from DH). *)

open Memguard_bignum

type params = { p : Bn.t; g : Bn.t }

val generate_params : Memguard_util.Prng.t -> bits:int -> params
(** A safe prime [p = 2q+1] with generator of the order-q subgroup. *)

val validate_params : params -> (unit, string) result

val group_small : params
(** A fixed 128-bit safe-prime group (pre-generated): fast handshakes for
    simulations and tests.  Far too small for real use, obviously. *)

val group_medium : params
(** A fixed 256-bit safe-prime group. *)

type keypair = { secret : Bn.t; public : Bn.t }

val generate_keypair : Memguard_util.Prng.t -> params -> keypair

val shared_secret : params -> secret:Bn.t -> peer_public:Bn.t -> Bn.t
(** [peer_public^secret mod p].  Raises [Invalid_argument] on a peer value
    outside [\[2, p-2\]] (small-subgroup hygiene). *)
