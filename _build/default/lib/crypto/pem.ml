let begin_marker label = "-----BEGIN " ^ label ^ "-----"
let end_marker label = "-----END " ^ label ^ "-----"

let encode ~label der =
  String.concat ""
    [ begin_marker label; "\n"; Base64.encode_wrapped der; end_marker label; "\n" ]

let derive_key ~passphrase ~iv =
  (* EVP_BytesToKey(md5, count=1): salt = first 8 bytes of the IV *)
  Md5.bytes_to_key ~passphrase ~salt:(String.sub iv 0 8) ~length:16

let encode_encrypted ~label ~passphrase ~iv der =
  if String.length iv <> 16 then invalid_arg "Pem.encode_encrypted: iv must be 16 bytes";
  let key = derive_key ~passphrase ~iv in
  let ciphertext = Aes.cbc_encrypt ~key ~iv der in
  String.concat ""
    [ begin_marker label; "\n";
      "Proc-Type: 4,ENCRYPTED\n";
      "DEK-Info: AES-128-CBC,";
      String.uppercase_ascii (Memguard_util.Bytes_util.hex_of_string iv);
      "\n\n";
      Base64.encode_wrapped ciphertext;
      end_marker label; "\n"
    ]

(* parse the first block: label, header lines (the "Key: value" ones), body *)
type block = { label : string; headers : (string * string) list; payload : string }

let parse_block text =
  let lines = String.split_on_char '\n' text in
  let is_begin line =
    let line = String.trim line in
    if String.length line > 16
       && String.sub line 0 11 = "-----BEGIN "
       && String.sub line (String.length line - 5) 5 = "-----"
    then Some (String.sub line 11 (String.length line - 16))
    else None
  in
  let rec find_begin lines =
    match lines with
    | [] -> Error "no PEM BEGIN marker found"
    | line :: rest -> (
      match is_begin line with
      | Some label -> headers label [] rest
      | None -> find_begin rest)
  and headers label acc lines =
    match lines with
    | [] -> Error "no PEM END marker found"
    | line :: rest -> (
      let line = String.trim line in
      match String.index_opt line ':' with
      | Some i when line <> end_marker label ->
        let k = String.trim (String.sub line 0 i) in
        let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        headers label ((k, v) :: acc) rest
      | _ -> body label (List.rev acc) [] (line :: rest))
  and body label hdrs acc lines =
    match lines with
    | [] -> Error "no PEM END marker found"
    | line :: rest ->
      let line = String.trim line in
      if line = end_marker label then
        Result.map
          (fun payload -> { label; headers = hdrs; payload })
          (Base64.decode (String.concat "" (List.rev acc)))
      else body label hdrs (line :: acc) rest
  in
  find_begin lines

let check_label expected block =
  match expected with
  | Some l when l <> block.label ->
    Error (Printf.sprintf "PEM label mismatch: expected %S, found %S" l block.label)
  | _ -> Ok block

let is_encrypted text =
  match parse_block text with
  | Ok b -> List.assoc_opt "Proc-Type" b.headers = Some "4,ENCRYPTED"
  | Error _ -> false

let decode ?label text =
  Result.bind (Result.bind (parse_block text) (check_label label)) (fun b ->
      if List.assoc_opt "Proc-Type" b.headers = Some "4,ENCRYPTED" then
        Error "PEM block is encrypted (passphrase required)"
      else Ok b.payload)

let decode_encrypted ?label ~passphrase text =
  Result.bind (Result.bind (parse_block text) (check_label label)) (fun b ->
      match List.assoc_opt "DEK-Info" b.headers with
      | None -> Error "no DEK-Info header (not an encrypted PEM?)"
      | Some info -> (
        match String.split_on_char ',' info with
        | [ "AES-128-CBC"; iv_hex ] -> (
          match Memguard_util.Bytes_util.string_of_hex (String.lowercase_ascii iv_hex) with
          | exception Invalid_argument _ -> Error "bad DEK-Info IV"
          | iv when String.length iv <> 16 -> Error "bad DEK-Info IV length"
          | iv ->
            let key = derive_key ~passphrase ~iv in
            Aes.cbc_decrypt ~key ~iv b.payload)
        | _ -> Error "unsupported DEK-Info cipher"))

let decode_exn ?label text =
  match decode ?label text with
  | Ok v -> v
  | Error e -> invalid_arg ("Pem.decode_exn: " ^ e)
