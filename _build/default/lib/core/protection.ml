module Ssl = Memguard_ssl.Ssl
module Sshd = Memguard_apps.Sshd
module Apache = Memguard_apps.Apache

type level =
  | Unprotected
  | Secure_dealloc
  | Application
  | Library
  | Kernel_level
  | Integrated

let all = [ Unprotected; Secure_dealloc; Application; Library; Kernel_level; Integrated ]

let name level =
  match level with
  | Unprotected -> "unprotected"
  | Secure_dealloc -> "secure-dealloc"
  | Application -> "application"
  | Library -> "library"
  | Kernel_level -> "kernel"
  | Integrated -> "integrated"

let of_name s = List.find_opt (fun l -> name l = s) all

let describe level =
  match level with
  | Unprotected -> "vanilla kernel, OpenSSL and applications"
  | Secure_dealloc -> "Chow et al. baseline: allocator zeroes memory at free()"
  | Application -> "servers call RSA_memory_align themselves (sshd -r)"
  | Library -> "d2i_PrivateKey calls RSA_memory_align for every application"
  | Kernel_level -> "pages cleared when entering the buddy free lists"
  | Integrated -> "library + kernel + O_NOCACHE (recommended)"

let kernel_zero_on_free level =
  match level with
  (* Chow et al. erase at deallocation in the general system allocators,
     kernel page allocator included — which is exactly why the paper
     credits secure deallocation with eliminating unallocated-memory
     attacks (and faults it for doing nothing about allocated memory) *)
  | Secure_dealloc | Kernel_level | Integrated -> true
  | Unprotected | Application | Library -> false

let kernel_secure_dealloc level =
  match level with
  | Secure_dealloc -> true
  | Unprotected | Application | Library | Kernel_level | Integrated -> false

let ssl_mode_patched_app level =
  match level with
  | Application | Library | Integrated -> Ssl.Hardened
  | Unprotected | Secure_dealloc | Kernel_level -> Ssl.Vanilla

let ssl_mode_plain_app level =
  match level with
  | Library | Integrated -> Ssl.Hardened
  | Unprotected | Secure_dealloc | Application | Kernel_level -> Ssl.Vanilla

let nocache level =
  match level with
  | Integrated -> true
  | Unprotected | Secure_dealloc | Application | Library | Kernel_level -> false

let sshd_options level =
  let mode = ssl_mode_patched_app level in
  { Sshd.no_reexec = (mode = Ssl.Hardened); ssl_mode = mode; nocache = nocache level }

let apache_options ?(workers = 8) ?(max_requests_per_child = 100) level =
  { Apache.workers;
    max_clients = 150;
    max_spare_servers = 10;
    ssl_mode = ssl_mode_patched_app level;
    nocache = nocache level;
    max_requests_per_child
  }
