(** The paper's countermeasure levels (Section 4), plus two baselines:
    the unprotected system and the Chow et al. "secure deallocation"
    comparator.  A level is a pure description; {!System} applies it. *)

type level =
  | Unprotected  (** vanilla kernel, library, and applications *)
  | Secure_dealloc
      (** Chow et al. [\[7\]]: general system allocators (user heap and
          kernel page allocator) zero memory at deallocation.  Eliminates
          unallocated-memory attacks but does nothing about duplication
          within allocated memory *)
  | Application
      (** the server binaries call [RSA_memory_align] themselves (and ssh
          runs with [-r]); unpatched third-party apps stay exposed *)
  | Library
      (** [d2i_PrivateKey] calls [RSA_memory_align]: every application is
          covered without modification *)
  | Kernel_level
      (** pages are cleared when they enter the buddy free lists
          ([free_hot_cold_page] patch); no library/application change *)
  | Integrated
      (** library + kernel + [O_NOCACHE]: the recommended solution — one
          mlocked physical key copy, clean free memory, no page-cache copy *)

val all : level list
(** In increasing order of protection. *)

val name : level -> string

val of_name : string -> level option

val describe : level -> string

(** {1 What each level configures} *)

val kernel_zero_on_free : level -> bool

val kernel_secure_dealloc : level -> bool

val ssl_mode_patched_app : level -> Memguard_ssl.Ssl.mode
(** The load mode experienced by the *patched* servers (sshd / apache). *)

val ssl_mode_plain_app : level -> Memguard_ssl.Ssl.mode
(** The load mode experienced by an unpatched third-party application —
    [Hardened] only when the library itself is patched. *)

val nocache : level -> bool
(** Whether key files are opened [O_NOCACHE] (integrated level only). *)

val sshd_options : level -> Memguard_apps.Sshd.options

val apache_options : ?workers:int -> ?max_requests_per_child:int -> level -> Memguard_apps.Apache.options
