lib/core/protection.mli: Memguard_apps Memguard_ssl
