lib/core/system.ml: Array Fun Kernel List Memguard_apps Memguard_attack Memguard_crypto Memguard_kernel Memguard_scan Memguard_ssl Memguard_util Memguard_vmm Protection
