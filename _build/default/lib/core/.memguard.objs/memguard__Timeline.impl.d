lib/core/timeline.ml: List Memguard_apps Memguard_util Option System
