lib/core/protection.ml: List Memguard_apps Memguard_ssl
