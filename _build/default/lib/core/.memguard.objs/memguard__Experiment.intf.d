lib/core/experiment.mli: Format Memguard_scan Protection
