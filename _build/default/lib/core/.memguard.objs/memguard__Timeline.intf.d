lib/core/timeline.mli: Memguard_apps Memguard_scan System
