(* Attack lab: play the Section 2 attacker end-to-end.

   We prime an unprotected Apache server with HTTPS traffic, run both
   memory-disclosure exploits, carve the RSA key parts out of the leaked
   bytes, rebuild the private key, and prove the theft worked by forging a
   signature that the server's public key accepts.

   Run with:  dune exec examples/attack_lab.exe *)

open Memguard
module Bn = Memguard_bignum.Bn
module Rsa = Memguard_crypto.Rsa
module Bytes_util = Memguard_util.Bytes_util
module Apache = Memguard_apps.Apache
module Ext2_leak = Memguard_attack.Ext2_leak
module Tty_dump = Memguard_attack.Tty_dump

(* The attacker knows the public key (n, e) — it is sent in every TLS
   handshake — and greps leaked bytes for a factor of n.  In the paper the
   search uses known byte patterns; here we even validate candidates like a
   real attacker would: p divides n. *)
let steal_factor ~(pub : Rsa.public) ~leak =
  let half_bytes = (Bn.bit_length pub.Rsa.n / 8 + 1) / 2 in
  let len = Bytes.length leak in
  let rec scan i =
    if i + half_bytes > len then None
    else begin
      let candidate = Bn.of_bytes_be (Bytes.sub_string leak i half_bytes) in
      if Bn.compare candidate Bn.one > 0
         && Bn.compare candidate pub.Rsa.n < 0
         && Bn.is_zero (Bn.rem pub.Rsa.n candidate)
      then Some candidate
      else scan (i + 1)
    end
  in
  scan 0

let rebuild_private ~(pub : Rsa.public) ~p =
  let q = Bn.div pub.Rsa.n p in
  let p, q = if Bn.compare p q > 0 then (p, q) else (q, p) in
  let p1 = Bn.sub p Bn.one and q1 = Bn.sub q Bn.one in
  let phi = Bn.mul p1 q1 in
  let d = Option.get (Bn.mod_inverse pub.Rsa.e phi) in
  { Rsa.n = pub.Rsa.n;
    e = pub.Rsa.e;
    d;
    p;
    q;
    dp = Bn.rem d p1;
    dq = Bn.rem d q1;
    qinv = Option.get (Bn.mod_inverse q p)
  }

let () =
  print_endline "[victim] booting 32 MiB machine, starting Apache with mod_ssl...";
  let sys = System.create ~seed:2007 ~level:Protection.Unprotected () in
  let apache = System.start_apache sys in
  let pub = Apache.public apache in
  let rng = System.rng sys in

  print_endline "[client] issuing a burst of 60 concurrent HTTPS requests...";
  let conns = List.filter_map (fun _ -> Apache.open_connection apache rng) (List.init 60 Fun.id) in
  List.iter (fun c -> Apache.serve apache c rng ~kib:16) conns;
  (* closing the burst lets prefork reap the spare workers — and their
     heaps, full of key copies, fall into unallocated memory *)
  List.iter (Apache.close_connection apache) conns;

  print_endline "[attacker] exploit 1: ext2 mkdir leak (no privileges needed)";
  System.settle sys;
  let stick = System.run_ext2_attack sys ~directories:5000 in
  Printf.printf "  %d directories -> %s of stale kernel memory on our USB stick\n"
    stick.Ext2_leak.directories
    (Bytes_util.human_size (Ext2_leak.bytes_disclosed stick));
  (match steal_factor ~pub ~leak:(Ext2_leak.device_bytes stick) with
   | None -> print_endline "  no factor of n in the leak this time"
   | Some p ->
     print_endline "  found a prime factor of the server modulus in the leak!";
     let stolen = rebuild_private ~pub ~p in
     let msg = Bn.of_int 0xC0FFEE in
     let signature = Rsa.sign_raw stolen msg in
     Printf.printf "  forged signature verifies against the server key: %b\n"
       (Rsa.verify_raw pub ~msg ~signature));

  print_endline "[attacker] exploit 2: n_tty dump (~50% of RAM at a random offset)";
  let dump = System.run_tty_attack sys in
  Printf.printf "  dumped %s starting at %#x\n"
    (Bytes_util.human_size (Bytes.length dump.Tty_dump.data))
    dump.Tty_dump.start;
  (match steal_factor ~pub ~leak:dump.Tty_dump.data with
   | None -> print_endline "  window missed every key copy (rerun with another seed)"
   | Some p ->
     let stolen = rebuild_private ~pub ~p in
     Printf.printf "  private key rebuilt from the dump; d matches: %b\n"
       (Bn.equal stolen.Rsa.d (System.priv sys).Rsa.d));

  print_endline "";
  print_endline "[defender] same machine, integrated library-kernel protection:";
  let sys2 = System.create ~seed:2007 ~level:Protection.Integrated () in
  let apache2 = System.start_apache sys2 in
  let rng2 = System.rng sys2 in
  let conns = List.filter_map (fun _ -> Apache.open_connection apache2 rng2) (List.init 60 Fun.id) in
  List.iter (Apache.close_connection apache2) conns;
  System.settle sys2;
  let stick2 = System.run_ext2_attack sys2 ~directories:5000 in
  Printf.printf "  ext2 attack: %d key copies recovered\n"
    (Ext2_leak.count_copies stick2 ~patterns:(System.patterns sys2));
  let found =
    match steal_factor ~pub:(Apache.public apache2) ~leak:(Ext2_leak.device_bytes stick2) with
    | Some _ -> "found a factor (!)"
    | None -> "no key material at all"
  in
  Printf.printf "  factor search over the stick: %s\n" found
