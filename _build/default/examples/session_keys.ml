(* Session keys: the secret class the paper's countermeasures do not cover.

   Even under the integrated library-kernel solution, every live SSH or TLS
   connection keeps its session keys in server memory — a disclosure attack
   that misses the single mlocked host-key page can still decrypt traffic
   for any session whose keys it catches.  The paper closes by arguing that
   fully eliminating exposure needs special hardware; this example shows
   concretely what remains.

   Run with:  dune exec examples/session_keys.exe *)

open Memguard
module Kernel = Memguard_kernel.Kernel
module Sshd = Memguard_apps.Sshd
module Ssh_kex = Memguard_proto.Ssh_kex
module Tty_dump = Memguard_attack.Tty_dump

let () =
  print_endline "Machine under the paper's FULL integrated protection:";
  let sys = System.create ~seed:314 ~level:Protection.Integrated () in
  let k = System.kernel sys in
  let sshd = System.start_sshd sys in
  let rng = System.rng sys in

  (* six users log in *)
  let conns = List.init 6 (fun _ -> Sshd.open_connection sshd rng) in

  (* the host key is down to one physical copy... *)
  let snap = System.scan sys ~time:0 in
  Printf.printf "host-key copies in RAM: %d (d, p, q — one each, mlocked)\n"
    snap.Memguard_scan.Report.total;

  (* ...but every connection's session keys are equally in RAM *)
  Printf.printf "live connections: %d, each holding 32 bytes of session keys\n"
    (List.length conns);

  (* a tty dump hunts those keys instead of the host key *)
  let dump = System.run_tty_attack sys in
  let caught =
    List.filter
      (fun conn ->
        let keys = Ssh_kex.key_material k (Sshd.child conn) (Sshd.session conn) in
        Tty_dump.found_any dump ~patterns:[ ("keys", keys) ])
      conns
  in
  Printf.printf "tty dump (~50%% of RAM) captured the session keys of %d / %d connections\n"
    (List.length caught) (List.length conns);
  print_endline "";
  print_endline "The host key survives (one mlocked page, found only with probability ~ the";
  print_endline "disclosed fraction), but per-connection session keys scale with load —";
  print_endline "the paper's concluding argument for special hardware, in one picture.";
  List.iter (Sshd.close_connection sshd) conns;
  Sshd.stop sshd
