(* Policy tour: the same workload under all six protection levels, with the
   paper's verdict on each — which attacks survive, and at what cost.

   Run with:  dune exec examples/policy_tour.exe *)

open Memguard
module Report = Memguard_scan.Report
module Sshd = Memguard_apps.Sshd
module Ext2_leak = Memguard_attack.Ext2_leak
module Tty_dump = Memguard_attack.Tty_dump

type verdict = {
  level : Protection.level;
  live_copies : int;  (* while 8 connections are active *)
  unallocated : int;  (* after they close *)
  ext2_copies : int;
  tty_copies : int;
}

let evaluate level =
  let sys = System.create ~seed:99 ~level () in
  let sshd = System.start_sshd sys in
  let rng = System.rng sys in
  let conns = List.init 8 (fun _ -> Sshd.open_connection sshd rng) in
  let live = System.scan sys ~time:0 in
  (* tty fires while the connections are still open *)
  let dump = System.run_tty_attack sys in
  let tty_copies = Tty_dump.count_copies dump ~patterns:(System.patterns sys) in
  List.iter (Sshd.close_connection sshd) conns;
  let after = System.scan sys ~time:1 in
  System.settle sys;
  let stick = System.run_ext2_attack sys ~directories:5000 in
  let ext2_copies = Ext2_leak.count_copies stick ~patterns:(System.patterns sys) in
  Sshd.stop sshd;
  { level;
    live_copies = live.Report.total;
    unallocated = after.Report.unallocated;
    ext2_copies;
    tty_copies
  }

let () =
  print_endline "Same machine, same ssh workload (8 concurrent connections), six policies:";
  print_endline "";
  Printf.printf "%-16s %12s %12s %11s %10s\n" "level" "live copies" "unallocated" "ext2 loot"
    "tty loot";
  Printf.printf "%s\n" (String.make 66 '-');
  let rows = List.map evaluate Protection.all in
  List.iter
    (fun v ->
      Printf.printf "%-16s %12d %12d %11d %10d\n" (Protection.name v.level) v.live_copies
        v.unallocated v.ext2_copies v.tty_copies)
    rows;
  print_endline "";
  print_endline "Reading guide (Section 4 of the paper):";
  print_endline "- secure-dealloc / kernel clear free pages: ext2 loot drops to zero,";
  print_endline "  but live copies still flood memory, so the tty dump keeps winning.";
  print_endline "- application / library alignment collapses the flood to one copy, but";
  print_endline "  a vanilla kernel could still expose stale pages from other sources.";
  print_endline "- integrated does both and evicts the PEM file from the page cache:";
  print_endline "  one mlocked page is all that is left to find."
