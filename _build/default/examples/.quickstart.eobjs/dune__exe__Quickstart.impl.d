examples/quickstart.ml: Format List Memguard Memguard_apps Memguard_attack Memguard_scan Printf Protection System
