examples/ssh_timeline.mli:
