examples/session_keys.mli:
