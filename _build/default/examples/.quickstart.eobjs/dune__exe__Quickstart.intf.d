examples/quickstart.mli:
