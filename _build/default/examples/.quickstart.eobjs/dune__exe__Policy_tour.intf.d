examples/policy_tour.mli:
