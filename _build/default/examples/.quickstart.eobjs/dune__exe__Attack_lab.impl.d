examples/attack_lab.ml: Bytes Fun List Memguard Memguard_apps Memguard_attack Memguard_bignum Memguard_crypto Memguard_util Option Printf Protection System
