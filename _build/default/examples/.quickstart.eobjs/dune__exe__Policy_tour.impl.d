examples/policy_tour.ml: List Memguard Memguard_apps Memguard_attack Memguard_scan Printf Protection String System
