examples/ssh_timeline.ml: Experiment List Memguard Memguard_scan Printf Protection String
