(* Reproduce Figure 5 (vanilla) and Figure 16 (integrated) as ASCII charts:
   the number of private-key copies in memory over the paper's scripted
   t=0..29 simulation — server start at t=2, traffic 8 -> 16 -> 8 -> 0
   concurrent transfers, server stop at t=22.

   Run with:  dune exec examples/ssh_timeline.exe *)

open Memguard
module Report = Memguard_scan.Report

let bar width value max_value =
  if max_value = 0 then ""
  else begin
    let n = value * width / max_value in
    String.make n '#'
  end

let chart title snaps =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-');
  let max_total = List.fold_left (fun acc s -> max acc s.Report.total) 1 snaps in
  Printf.printf "%4s %23s | allocated # / unallocated +\n" "t" "copies (alloc/unalloc)";
  List.iter
    (fun s ->
      let marker =
        if s.Report.time = 2 then "  <- server start"
        else if s.Report.time = 6 then "  <- 8 concurrent transfers"
        else if s.Report.time = 10 then "  <- 16 concurrent"
        else if s.Report.time = 14 then "  <- back to 8"
        else if s.Report.time = 18 then "  <- traffic stops"
        else if s.Report.time = 22 then "  <- server stop"
        else ""
      in
      Printf.printf "%4d %10d (%4d/%4d) | %s%s%s\n" s.Report.time s.Report.total
        s.Report.allocated s.Report.unallocated
        (bar 40 s.Report.allocated max_total)
        (String.map (fun _ -> '+') (bar 40 s.Report.unallocated max_total))
        marker)
    snaps

let () =
  let vanilla = Experiment.timeline ~level:Protection.Unprotected ~seed:7 Experiment.Ssh in
  chart "Figure 5(b) — OpenSSH, no protection: copies of the key over time" vanilla;
  let integrated = Experiment.timeline ~level:Protection.Integrated ~seed:7 Experiment.Ssh in
  chart "Figure 16 — OpenSSH under the integrated library-kernel solution" integrated;
  print_newline ();
  print_endline "Note how, unprotected, copies flood allocated memory while clients are";
  print_endline "active and sink into unallocated memory when connections close — still";
  print_endline "readable by anything that can leak a free page.  The integrated run";
  print_endline "holds a single aligned copy for the server's whole lifetime."
