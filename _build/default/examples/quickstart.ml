(* Quickstart: build a simulated machine, run an OpenSSH server on it, and
   watch where its RSA private key ends up in physical memory — first on a
   vanilla system, then under the paper's integrated library-kernel
   protection.

   Run with:  dune exec examples/quickstart.exe *)

open Memguard
module Report = Memguard_scan.Report
module Scanner = Memguard_scan.Scanner
module Sshd = Memguard_apps.Sshd

let show_machine level =
  Printf.printf "=== %s — %s ===\n" (Protection.name level) (Protection.describe level);

  (* A 32 MiB machine with a fresh 256-bit RSA host key on its disk. *)
  let sys = System.create ~seed:42 ~level () in

  (* Boot the ssh server and put 8 connections through it. *)
  let sshd = System.start_sshd sys in
  let rng = System.rng sys in
  let conns = List.init 8 (fun _ -> Sshd.open_connection sshd rng) in

  (* Scan all of physical memory for the key material, like the paper's
     scanmemory kernel module. *)
  let snap = System.scan sys ~time:0 in
  Printf.printf "with 8 live connections: %d copies (%d allocated, %d unallocated)\n"
    snap.Report.total snap.Report.allocated snap.Report.unallocated;
  List.iter
    (fun (label, n) -> Printf.printf "  pattern %-4s found %d times\n" label n)
    (Report.by_label snap);

  (* Show one hit in detail. *)
  (match snap.Report.hits with
   | hit :: _ -> Format.printf "  e.g. %a@." Scanner.pp_hit hit
   | [] -> print_endline "  (no key material visible anywhere)");

  (* Close the connections: watch copies migrate to unallocated memory. *)
  List.iter (Sshd.close_connection sshd) conns;
  let snap = System.scan sys ~time:1 in
  Printf.printf "after closing them:      %d copies (%d allocated, %d unallocated)\n"
    snap.Report.total snap.Report.allocated snap.Report.unallocated;

  (* Now attack.  The ext2 mkdir leak can only see unallocated memory... *)
  System.settle sys;
  let ext2 = System.run_ext2_attack sys ~directories:5000 in
  Printf.printf "ext2 attack (5000 dirs): %d copies recovered\n"
    (Memguard_attack.Ext2_leak.count_copies ext2 ~patterns:(System.patterns sys));

  (* ...while the n_tty dump grabs ~50%% of RAM, allocated or not. *)
  let dump = System.run_tty_attack sys in
  Printf.printf "n_tty dump (~50%% RAM):  %d copies recovered\n\n"
    (Memguard_attack.Tty_dump.count_copies dump ~patterns:(System.patterns sys));

  Sshd.stop sshd

let () =
  show_machine Protection.Unprotected;
  show_machine Protection.Integrated;
  print_endline "The integrated solution keeps exactly one mlocked physical copy of the";
  print_endline "key parts, so the ext2 attack recovers nothing and the tty dump only";
  print_endline "wins when its random window happens to cover that single page."
