(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sections 2, 3.2, 5.2/5.3, 6.2/6.3) on the simulated
   substrate, then runs Bechamel micro-benchmarks backing the performance
   claims (Figures 8, 19, 20: "no performance penalty").

   Run with:  dune exec bench/main.exe
   Figure-only / micro-only runs:
     dune exec bench/main.exe -- --skip-micro
     dune exec bench/main.exe -- --skip-figures *)

open Memguard
module Report = Memguard_scan.Report
module Scanner = Memguard_scan.Scanner
module Kernel = Memguard_kernel.Kernel
module Sshd = Memguard_apps.Sshd
module Apache = Memguard_apps.Apache
module Ssl = Memguard_ssl.Ssl
module Sim_rsa = Memguard_ssl.Sim_rsa
module Bn = Memguard_bignum.Bn
module Rsa = Memguard_crypto.Rsa
module Prng = Memguard_util.Prng
module Obs = Memguard_obs.Obs
module Fleet = Memguard_fleet.Fleet

let section title =
  Format.printf "@.=== %s ===@." title

let server_name s = match s with Experiment.Ssh -> "OpenSSH" | Experiment.Http -> "Apache"

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's figures                                         *)
(* ------------------------------------------------------------------ *)

let fig_1_2 () =
  List.iter
    (fun (server, fig) ->
      section
        (Printf.sprintf "Figure %s — %s private keys recovered by the ext2 attack" fig
           (server_name server));
      let pts =
        Experiment.ext2_sweep ~trials:3 ~connections:[ 50; 150; 300; 500 ]
          ~directories:[ 250; 1000; 4000 ] server
      in
      Format.printf "%a" Experiment.pp_sweep pts)
    [ (Experiment.Ssh, "1(a,b)"); (Experiment.Http, "2(a,b)") ]

let fig_3_4 () =
  List.iter
    (fun (server, fig) ->
      section
        (Printf.sprintf "Figure %s — %s private keys recovered by the n_tty dump" fig
           (server_name server));
      let pts = Experiment.tty_sweep ~trials:5 server in
      Format.printf "%a" Experiment.pp_sweep pts)
    [ (Experiment.Ssh, "3(a,b)"); (Experiment.Http, "4(a,b)") ]

let print_timeline level server =
  let snaps = Experiment.timeline ~level ~num_pages:4096 server in
  Format.printf "%a" Report.pp_series snaps

let fig_5_6 () =
  section "Figure 5(a,b) — OpenSSH key copies over time, no protection";
  print_timeline Protection.Unprotected Experiment.Ssh;
  section "Figure 6(a,b) — Apache key copies over time, no protection";
  print_timeline Protection.Unprotected Experiment.Http

let fig_7_17_18 () =
  List.iter
    (fun (server, fig) ->
      section
        (Printf.sprintf "Figure %s — tty attack before/after the integrated solution (%s)" fig
           (server_name server));
      List.iter
        (fun (level, pts) ->
          Format.printf "-- %s --@.%a" (Protection.name level) Experiment.pp_sweep pts)
        (Experiment.before_after_tty ~trials:10 server))
    [ (Experiment.Ssh, "7(a,b)"); (Experiment.Http, "17/18") ]

let fig_9_16_21_28 () =
  List.iter
    (fun (server, figs) ->
      List.iter
        (fun (level, fig) ->
          section
            (Printf.sprintf "Figure %s — %s under the %s-level solution" fig
               (server_name server) (Protection.name level));
          print_timeline level server)
        figs)
    [ ( Experiment.Ssh,
        [ (Protection.Application, "9/10"); (Protection.Library, "11/12");
          (Protection.Kernel_level, "13/14"); (Protection.Integrated, "15/16")
        ] );
      ( Experiment.Http,
        [ (Protection.Application, "21/22"); (Protection.Library, "23/24");
          (Protection.Kernel_level, "25/26"); (Protection.Integrated, "27/28")
        ] )
    ]

let fig_8_19_20 () =
  List.iter
    (fun (server, fig, what) ->
      section (Printf.sprintf "Figure %s — %s %s before/after (wall-clock, simulated substrate)" fig (server_name server) what);
      List.iter
        (fun level ->
          let p = Experiment.perf_run ~level ~transactions:400 ~concurrent:20 server in
          Format.printf "%-14s %a@." (Protection.name level) Experiment.pp_perf p)
        [ Protection.Unprotected; Protection.Integrated ])
    [ (Experiment.Ssh, "8", "scp stress"); (Experiment.Http, "19/20", "Siege stress") ]

let section_52_62_ext2 () =
  List.iter
    (fun (server, sec) ->
      section
        (Printf.sprintf "Section %s — ext2 attack against every protection level (%s)" sec
           (server_name server));
      Format.printf "%-16s %12s %10s@." "level" "copies/run" "success";
      List.iter
        (fun (level, pts) ->
          List.iter
            (fun p ->
              Format.printf "%-16s %12.2f %9.0f%%@." (Protection.name level)
                p.Experiment.mean_copies (100. *. p.Experiment.success_rate))
            pts)
        (Experiment.before_after_ext2 ~trials:3 server))
    [ (Experiment.Ssh, "5.2"); (Experiment.Http, "6.2") ]

let ablations () =
  section "Ablation A1 — secure-dealloc vs kernel vs integrated (success rates)";
  Format.printf "%-16s %10s %10s@." "level" "ext2" "tty";
  List.iter
    (fun (name, ext2, tty) ->
      Format.printf "%-16s %9.0f%% %9.0f%%@." name (100. *. ext2) (100. *. tty))
    (Experiment.ablation_dealloc ());
  section "Ablation A2 — COW sharing: allocated key copies vs apache workers";
  Format.printf "%-8s %10s %10s@." "workers" "vanilla" "hardened";
  List.iter
    (fun (w, v, h) -> Format.printf "%-8d %10d %10d@." w v h)
    (Experiment.ablation_cow ());
  section "Ablation A3 — swap: key hits on the swap device under memory pressure";
  List.iter (fun (name, hits) -> Format.printf "%-24s %d@." name hits) (Experiment.ablation_swap ());
  section "Ablation A4 — O_NOCACHE: PEM copies left in RAM after a key load";
  List.iter (fun (name, n) -> Format.printf "%-24s %d@." name n) (Experiment.ablation_nocache ());
  section "Ablation A5 — encrypted key file: passphrase & key copies in RAM after load";
  Format.printf "%-28s %12s %8s@." "configuration" "passphrase" "d";
  List.iter
    (fun (name, pass, d) -> Format.printf "%-28s %12d %8d@." name pass d)
    (Experiment.ablation_encrypted_key ());
  section "Ablation A6 — core dump of the server process (what alignment cannot fix)";
  List.iter
    (fun (name, copies) -> Format.printf "%-16s %d key copies in the core@." name copies)
    (Experiment.ablation_core_dump ());
  section "Ablation A7 — tty success rate vs disclosed fraction (integrated system)";
  Format.printf "%-12s %10s@." "fraction" "success";
  List.iter
    (fun (f, s) -> Format.printf "%-12.2f %9.0f%%@." f (100. *. s))
    (Experiment.ablation_tty_fraction ())

let figures () =
  fig_1_2 ();
  fig_3_4 ();
  fig_5_6 ();
  fig_7_17_18 ();
  fig_8_19_20 ();
  fig_9_16_21_28 ();
  section_52_62_ext2 ();
  ablations ()

(* ------------------------------------------------------------------ *)
(* Part 1b: scan-engine comparison (--json writes BENCH_scan.json)     *)
(* ------------------------------------------------------------------ *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let time_mean ?(reps = 3) f =
  ignore (f ()) (* warm-up *);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

(* minimum of [reps] timed runs: the robust estimator for short wall-clock
   sections — GC pauses and scheduler preemption only ever add time, so
   the min is the least-noisy sample of the true cost *)
let time_min ?(reps = 5) f =
  ignore (f ()) (* warm-up *);
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let scan_engine_bench () =
  section "Scan engine — seed multipass vs single pass vs incremental (4096 pages)";
  let num_pages = 4096 in
  let sys = System.create ~num_pages ~seed:11 ~level:Protection.Unprotected () in
  let k = System.kernel sys in
  let patterns = System.patterns sys in
  (* cold full sweeps of an idle machine *)
  let t_multipass = time_mean (fun () -> Scanner.scan_multipass k ~patterns) in
  let t_single = time_mean (fun () -> Scanner.scan k ~patterns) in
  (* steady-state incremental re-scan (nothing dirty between scans) *)
  let cache = Memguard_scan.Scan_cache.create k ~patterns in
  ignore (Memguard_scan.Scan_cache.scan cache);
  let t_incr_idle = time_mean ~reps:10 (fun () -> Memguard_scan.Scan_cache.scan cache) in
  (* the Figure 5/6 timeline workload: 30 snapshots under live traffic *)
  let timeline scan_mode =
    time_once (fun () -> Experiment.timeline ~num_pages ~scan_mode Experiment.Ssh)
  in
  let t_timeline_seed = timeline System.Multipass in
  let t_timeline_full = timeline System.Full in
  let t_timeline_incr = timeline System.Incremental in
  let speedup_single = t_multipass /. t_single in
  let speedup_timeline = t_timeline_seed /. t_timeline_incr in
  (* instrumented timeline runs: per-scan wall-time percentiles per mode,
     plus the incremental cache's hit-rate / dirty-page ratio.  Separate
     runs so the headline timings above stay untraced. *)
  let percentiles scan_mode =
    let obs = Obs.create () in
    ignore (Experiment.timeline ~num_pages ~scan_mode ~obs Experiment.Ssh);
    (obs, Obs.Metrics.samples obs ("scan.wall_s." ^ System.mode_name scan_mode))
  in
  let _, wall_seed = percentiles System.Multipass in
  let _, wall_full = percentiles System.Full in
  let obs_incr, wall_incr = percentiles System.Incremental in
  let clean = float_of_int (Obs.Metrics.counter obs_incr "scan.cache_clean_pages") in
  let dirty = float_of_int (Obs.Metrics.counter obs_incr "scan.cache_dirty_pages") in
  let hit_rate = clean /. Float.max 1.0 (clean +. dirty) in
  let dirty_ratio = dirty /. Float.max 1.0 (clean +. dirty) in
  let p samples q = Obs.Metrics.percentile samples q in
  (* exposure ledger rider: wall-time overhead of ledger-on vs obs-off
     timeline runs, plus the byte-tick verdict per protection level *)
  let t_ledger_off =
    time_min (fun () ->
        Experiment.timeline ~num_pages ~scan_mode:System.Incremental Experiment.Ssh)
  in
  let t_ledger_on =
    time_min (fun () ->
        let obs = Obs.create ~ring_capacity:(1 lsl 20) () in
        Experiment.timeline ~num_pages ~scan_mode:System.Incremental ~obs Experiment.Ssh)
  in
  let ledger_overhead_pct = 100. *. ((t_ledger_on /. t_ledger_off) -. 1.) in
  (* timeseries rider: the full telemetry path (per-tick series sampling
     plus the default alert pack evaluated every scan) vs the same
     timeline with observability off.  Wall-clock, so warn-only in the
     perf gate; the per-series sample counts below are the deterministic
     half — they pin exactly how often System.scan feeds each series,
     so a sampling regression (a series silently dropped or double-fed)
     fails the bench-gate key check even on a noisy runner. *)
  let t_telemetry =
    time_min (fun () ->
        let obs = Obs.create ~ring_capacity:(1 lsl 20) () in
        Dashboard.install_default_alerts obs;
        Experiment.timeline ~num_pages ~scan_mode:System.Incremental ~obs Experiment.Ssh)
  in
  let timeseries_overhead_pct = 100. *. ((t_telemetry /. t_ledger_off) -. 1.) in
  let series_counts =
    let obs = Obs.create ~ring_capacity:(1 lsl 20) () in
    Dashboard.install_default_alerts obs;
    ignore
      (Experiment.timeline ~num_pages ~scan_mode:System.Incremental ~obs Experiment.Ssh);
    List.map
      (fun name -> (name, Obs.Timeseries.sample_count obs name))
      (Obs.Timeseries.names obs)
  in
  let exposure_by_level =
    List.map
      (fun level ->
        let d = Dashboard.run ~level ~num_pages ~scan_mode:System.Incremental () in
        let total =
          List.fold_left (fun acc (_, v) -> acc + v) 0 d.Dashboard.totals
        in
        (Protection.name level, total, Dashboard.sensitive_unsafe_total d))
      Protection.all
  in
  (* fleet rider: aggregate scan+timeline throughput of a sharded fleet,
     sequential vs parallel on 4 domains.  Connection/cycle counts are
     deterministic; the seconds and the speedup are wall-clock (warn-only
     in the perf gate — on a 1-core host the speedup is honestly ~1x). *)
  let fleet_cfg =
    { Fleet.default with
      Fleet.shards = 8;
      domains = 1;
      num_pages = 1024;
      conns_low = 8;
      conns_high = 16
    }
  in
  let fleet_report = ref None in
  let t_fleet_1 = time_once (fun () -> fleet_report := Some (Fleet.run fleet_cfg)) in
  let t_fleet_2 =
    time_once (fun () -> ignore (Fleet.run { fleet_cfg with Fleet.domains = 2 }))
  in
  let fleet4_report = ref None in
  let t_fleet_4 =
    time_once (fun () ->
        fleet4_report := Some (Fleet.run { fleet_cfg with Fleet.domains = 4 }))
  in
  let fleet = Option.get !fleet_report in
  let fleet4 = Option.get !fleet4_report in
  let fleet_speedup = t_fleet_1 /. t_fleet_4 in
  (* recommend the domain count this host actually ran fastest, not
     Domain.recommended_domain_count: on a 1-core container 4 domains
     multiplex one core and lose ~3x to scheduling + GC coordination
     (speedup 0.35x measured), so honesty demands the argmin.  The
     crossover is domains <= cores — see DESIGN.md. *)
  let fleet_domains_recommended =
    let timed = [ (1, t_fleet_1); (2, t_fleet_2); (4, t_fleet_4) ] in
    fst (List.fold_left (fun (bd, bt) (d, t) -> if t < bt then (d, t) else (bd, bt))
           (List.hd timed) (List.tl timed))
  in
  (* per-domain scan throughput: deterministic pages/sweeps per shard,
     wall-clock pages/s per worker domain (warn-only in the gate) *)
  let fleet_pages_swept =
    List.fold_left (fun acc (s : Fleet.shard_result) -> acc + s.Fleet.pages_swept) 0
      fleet.Fleet.shard_results
  in
  let fleet_sweeps =
    List.fold_left (fun acc (s : Fleet.shard_result) -> acc + s.Fleet.sweeps) 0
      fleet.Fleet.shard_results
  in
  let fleet_sweep_cycles =
    List.fold_left
      (fun acc (s : Fleet.shard_result) ->
        acc
        + (match List.assoc_opt "scan" s.Fleet.cycles_by_subsystem with
           | Some c -> c
           | None -> 0))
      0 fleet.Fleet.shard_results
  in
  let t_fleet_best = Float.min t_fleet_1 (Float.min t_fleet_2 t_fleet_4) in
  let fleet_scan_pages_per_sec = float_of_int fleet_pages_swept /. t_fleet_best in
  (* throughput at whichever domain count this host runs faster — a 1-core
     host loses on 4 domains, a 4-core host wins; either way the number is
     what an operator picking the right --domains would see *)
  let fleet_conns_per_sec =
    float_of_int fleet.Fleet.total_connections /. t_fleet_best
  in
  Format.printf "%-44s %12.6f s@." "full scan, seed (one pass per pattern)" t_multipass;
  Format.printf "%-44s %12.6f s  (%.2fx)@." "full scan, single-pass multi-pattern" t_single
    speedup_single;
  Format.printf "%-44s %12.6f s@." "incremental re-scan, idle machine" t_incr_idle;
  Format.printf "%-44s %12.6f s@." "fig 5/6 timeline, seed re-scan per tick" t_timeline_seed;
  Format.printf "%-44s %12.6f s@." "fig 5/6 timeline, single-pass re-scan" t_timeline_full;
  Format.printf "%-44s %12.6f s  (%.2fx vs seed)@." "fig 5/6 timeline, incremental"
    t_timeline_incr speedup_timeline;
  Format.printf "%-44s %11.1f%%@." "scan-cache hit rate (timeline)" (100. *. hit_rate);
  Format.printf "%-44s %11.1f%%@." "dirty-page ratio (timeline)" (100. *. dirty_ratio);
  List.iter
    (fun (mode, samples) ->
      Format.printf "%-44s %12.6f / %.6f / %.6f s@."
        (Printf.sprintf "per-scan wall time %s (p50/p90/max)" mode)
        (p samples 50.) (p samples 90.) (p samples 100.))
    [ ("multipass", wall_seed); ("full", wall_full); ("incremental", wall_incr) ];
  Format.printf "%-44s %11.1f%%@." "exposure ledger overhead (timeline)" ledger_overhead_pct;
  Format.printf "%-44s %11.1f%%@." "timeseries + alert overhead (timeline)"
    timeseries_overhead_pct;
  Format.printf "%-44s %7d series / %d samples@." "telemetry sampled (timeline)"
    (List.length series_counts)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 series_counts);
  Format.printf "%-44s %12d conns (%d shards)@." "fleet connections (8-shard timeline)"
    fleet.Fleet.total_connections fleet_cfg.Fleet.shards;
  Format.printf "%-44s %12.6f / %.6f / %.6f s  (%.2fx at 4 domains)@."
    "fleet wall time, 1 / 2 / 4 domains" t_fleet_1 t_fleet_2 t_fleet_4 fleet_speedup;
  Format.printf "%-44s %12d (fastest measured on this host)@."
    "fleet domains recommended" fleet_domains_recommended;
  Format.printf "%-44s %12.0f conns/s@." "fleet connection throughput (best domains)"
    fleet_conns_per_sec;
  Format.printf "%-44s %12d pages in %d sweeps (%d scan cycles)@."
    "fleet scan volume (8-shard timeline)" fleet_pages_swept fleet_sweeps fleet_sweep_cycles;
  Format.printf "%-44s %12.0f pages/s@." "fleet scan throughput (best domains)"
    fleet_scan_pages_per_sec;
  List.iter
    (fun (d : Fleet.domain_stat) ->
      Format.printf "%-44s %12.0f pages/s  (%d pages, %d sweeps, %.6f s)@."
        (Printf.sprintf "  domain %d scan throughput (4-domain run)" d.Fleet.domain)
        (if d.Fleet.wall_s > 0. then float_of_int d.Fleet.d_pages_swept /. d.Fleet.wall_s
         else 0.)
        d.Fleet.d_pages_swept d.Fleet.d_sweeps d.Fleet.wall_s)
    fleet4.Fleet.domain_stats;
  List.iter
    (fun (name, total, unsafe) ->
      Format.printf "%-44s %12d byte-ticks (%d sensitive outside mlock)@."
        (Printf.sprintf "exposure at %s" name) total unsafe)
    exposure_by_level;
  let json =
    Printf.sprintf
      "{\n\
      \  \"num_pages\": %d,\n\
      \  \"patterns\": %d,\n\
      \  \"full_scan_multipass_s\": %.6f,\n\
      \  \"full_scan_single_pass_s\": %.6f,\n\
      \  \"incremental_rescan_idle_s\": %.6f,\n\
      \  \"timeline_seed_multipass_s\": %.6f,\n\
      \  \"timeline_full_rescan_s\": %.6f,\n\
      \  \"timeline_incremental_s\": %.6f,\n\
      \  \"speedup_single_pass_vs_multipass\": %.2f,\n\
      \  \"speedup_timeline\": %.2f,\n\
      \  \"scan_cache_hit_rate\": %.4f,\n\
      \  \"dirty_page_ratio\": %.4f,\n\
      \  \"timeline_scan_wall_p50_multipass_s\": %.6f,\n\
      \  \"timeline_scan_wall_p90_multipass_s\": %.6f,\n\
      \  \"timeline_scan_wall_max_multipass_s\": %.6f,\n\
      \  \"timeline_scan_wall_p50_full_s\": %.6f,\n\
      \  \"timeline_scan_wall_p90_full_s\": %.6f,\n\
      \  \"timeline_scan_wall_max_full_s\": %.6f,\n\
      \  \"timeline_scan_wall_p50_incremental_s\": %.6f,\n\
      \  \"timeline_scan_wall_p90_incremental_s\": %.6f,\n\
      \  \"timeline_scan_wall_max_incremental_s\": %.6f,\n\
      \  \"exposure_ledger_overhead_pct\": %.2f,\n\
      \  \"timeseries_overhead_pct\": %.2f,\n\
      \  \"fleet_shards\": %d,\n\
      \  \"fleet_connections\": %d,\n\
      \  \"fleet_requests\": %d,\n\
      \  \"fleet_total_cycles\": %d,\n\
      \  \"fleet_sensitive_unsafe_byte_ticks\": %d,\n\
      \  \"fleet_domains_recommended\": %d,\n\
      \  \"fleet_timeline_domains_1_s\": %.6f,\n\
      \  \"fleet_timeline_domains_2_s\": %.6f,\n\
      \  \"fleet_timeline_domains_4_s\": %.6f,\n\
      \  \"fleet_speedup_domains_4\": %.2f,\n\
      \  \"fleet_connections_per_sec\": %.0f,\n\
      \  \"fleet_scan_pages_swept\": %d,\n\
      \  \"fleet_scan_sweeps\": %d,\n\
      \  \"fleet_scan_sweep_cycles\": %d,\n\
      \  \"fleet_scan_pages_per_sec\": %.0f%s\n\
       }\n"
      num_pages (List.length patterns) t_multipass t_single t_incr_idle t_timeline_seed
      t_timeline_full t_timeline_incr speedup_single speedup_timeline hit_rate dirty_ratio
      (p wall_seed 50.) (p wall_seed 90.) (p wall_seed 100.)
      (p wall_full 50.) (p wall_full 90.) (p wall_full 100.)
      (p wall_incr 50.) (p wall_incr 90.) (p wall_incr 100.)
      ledger_overhead_pct timeseries_overhead_pct fleet_cfg.Fleet.shards
      fleet.Fleet.total_connections
      fleet.Fleet.total_requests fleet.Fleet.total_cycles fleet.Fleet.sensitive_unsafe
      fleet_domains_recommended t_fleet_1 t_fleet_2 t_fleet_4 fleet_speedup
      fleet_conns_per_sec fleet_pages_swept fleet_sweeps fleet_sweep_cycles
      fleet_scan_pages_per_sec
      (String.concat ""
         (List.map
            (fun (name, total, unsafe) ->
              let slug = String.map (function '-' -> '_' | c -> c) name in
              Printf.sprintf
                ",\n  \"exposure_byte_ticks_%s\": %d,\n\
                 \  \"exposure_sensitive_unsafe_byte_ticks_%s\": %d" slug total slug unsafe)
            exposure_by_level
          @ List.map
              (fun (name, n) ->
                let slug =
                  String.map (function '.' | '-' -> '_' | c -> c) name
                in
                Printf.sprintf ",\n  \"series_samples_%s\": %d" slug n)
              series_counts))
  in
  let oc = open_out "BENCH_scan.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_scan.json@."

(* ------------------------------------------------------------------ *)
(* Part 1c: chaos-campaign throughput (--chaos)                        *)
(* ------------------------------------------------------------------ *)

(* ops/sec of the fault-injection harness with its per-op structural audit
   and (at the guaranteeing levels) per-op incremental confinement scan —
   the number that decides how many seeds CI can afford *)
let chaos_bench () =
  section "chaos campaign throughput (per-op audit + confinement oracle)";
  let module Campaign = Memguard_fault.Campaign in
  let ops = 400 in
  Format.printf "%-20s %10s %12s %10s %8s@." "level" "ops" "wall s" "ops/s" "ooms";
  List.iter
    (fun level ->
      let cfg = { Campaign.default_config with Campaign.seed = 13; level; ops } in
      let t0 = Unix.gettimeofday () in
      let r = Campaign.run cfg in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%-20s %10d %12.3f %10.0f %8d%s@." (Protection.name level)
        r.Campaign.ops_run dt
        (float_of_int r.Campaign.ops_run /. dt)
        r.Campaign.ooms
        (if Campaign.passed r then "" else "  FAIL"))
    [ Protection.Unprotected; Protection.Secure_dealloc; Protection.Kernel_level;
      Protection.Integrated ]

(* ------------------------------------------------------------------ *)
(* Part 1d: deterministic perf gate (--baseline / --check)             *)
(* ------------------------------------------------------------------ *)

(* Simulated-cycle totals of the overhead report on a small machine.
   Unlike every wall-clock number above, these are exact and
   reproducible bit-for-bit across hosts, so CI can diff them against a
   committed baseline with a tight tolerance and zero noise.  A failure
   means a code change made some countermeasure (or the unprotected
   baseline) do more simulated work — which is exactly the regression
   the gate exists to catch. *)
let gate_metrics () =
  let rows = Overhead.run ~num_pages:1024 () in
  let slug level = String.map (function '-' -> '_' | c -> c) (Protection.name level) in
  let overhead =
    List.concat_map
      (fun (r : Overhead.row) ->
        (Printf.sprintf "overhead_cycles_%s" (slug r.Overhead.level), r.Overhead.cycles)
        ::
        (* per-subsystem rows pinpoint *which* mechanism regressed *)
        List.map
          (fun (sub, c) ->
            (Printf.sprintf "overhead_cycles_%s_%s" (slug r.Overhead.level) sub, c))
          r.Overhead.by_subsystem)
      rows
  in
  (* a small sequential fleet: its merged counts are exact, so the gate
     also catches regressions in the sharded path (lost connections,
     cycle drift, exposure leaks across the merge) *)
  let fleet =
    Fleet.run
      { Fleet.default with
        Fleet.shards = 4;
        domains = 1;
        num_pages = 1024;
        conns_low = 8;
        conns_high = 16
      }
  in
  overhead
  @ [ ("fleet_gate_connections", fleet.Fleet.total_connections);
      ("fleet_gate_requests", fleet.Fleet.total_requests);
      ("fleet_gate_cycles", fleet.Fleet.total_cycles);
      ("fleet_gate_sensitive_unsafe", fleet.Fleet.sensitive_unsafe)
    ]

let metrics_to_json metrics =
  Printf.sprintf "{\n%s\n}\n"
    (String.concat ",\n" (List.map (fun (k, v) -> Printf.sprintf "  %S: %d" k v) metrics))

(* flat {"key": number} parser — just enough for baseline.json, so the
   gate needs no JSON library *)
let parse_flat_json s =
  let n = String.length s in
  let metrics = ref [] in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      let j = String.index_from s (!i + 1) '"' in
      let key = String.sub s (!i + 1) (j - !i - 1) in
      let k = ref (j + 1) in
      while !k < n && (s.[!k] = ':' || s.[!k] = ' ' || s.[!k] = '\n') do incr k done;
      let start = !k in
      while
        !k < n
        && (match s.[!k] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr k
      done;
      if !k > start then
        metrics := (key, float_of_string (String.sub s start (!k - start))) :: !metrics;
      i := !k
    end
    else incr i
  done;
  List.rev !metrics

let write_baseline path =
  let metrics = gate_metrics () in
  let oc = open_out path in
  output_string oc (metrics_to_json metrics);
  close_out oc;
  Format.printf "wrote %s (%d metrics)@." path (List.length metrics)

(* The gate is the flight differ: baseline and current become scalars-only
   archives and Obs.Diff classifies every delta — the same tolerance on
   all three families reproduces the old hand-rolled semantics (every
   metric gets the CLI tolerance; wall-clock regressions warn, anything
   else fails hard).  The old per-key comparison loop is gone. *)
let check_baseline path ~tolerance =
  section
    (Printf.sprintf "perf gate — flight diff vs %s (tolerance %d%%)" path tolerance);
  let baseline =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Obs.Snapshot.of_scalars ~kind:"bench-gate" (parse_flat_json s)
  in
  let current =
    Obs.Snapshot.of_scalars ~kind:"bench-gate"
      (List.map (fun (k, v) -> (k, float_of_int v)) (gate_metrics ()))
  in
  let tol = float_of_int tolerance in
  let d =
    Obs.Diff.diff ~det_tol_pct:tol ~wall_tol_pct:tol ~exp_tol_pct:tol baseline current
  in
  Obs.Diff.pp Format.std_formatter d;
  let soft = Obs.Diff.regressions d - Obs.Diff.hard_regressions d in
  if soft > 0 then
    Format.printf "@.%d wall-clock metric(s) drifted beyond %d%% (not gated)@." soft
      tolerance;
  let hard = Obs.Diff.hard_regressions d in
  if hard > 0 then begin
    Format.printf "@.perf gate FAILED: %d metric(s) regressed beyond %d%%@." hard tolerance;
    exit 1
  end
  else
    Format.printf "@.perf gate ok: %d metric(s) within %d%% of baseline@." d.Obs.Diff.compared
      tolerance

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* per-operation setup shared across runs; allocations recycle inside the
   simulated kernel so state stays bounded *)

let bench_rsa_op level =
  let sys = System.create ~num_pages:1024 ~seed:1 ~noise:false ~level () in
  let k = System.kernel sys in
  let p = Kernel.spawn k ~name:"bench" in
  let rsa =
    Ssl.load_private_key k p ~path:System.key_path
      ~nocache:(Protection.nocache level)
      (Protection.ssl_mode_patched_app level)
  in
  let c = Bn.of_int 0xBEEF in
  Staged.stage (fun () -> ignore (Sim_rsa.private_op k p rsa c))

let bench_page_alloc ~zero =
  let mem = Memguard_vmm.Phys_mem.create ~num_pages:1024 () in
  let buddy = Memguard_vmm.Buddy.create ~zero_on_free:zero mem in
  Staged.stage (fun () ->
      match Memguard_vmm.Buddy.alloc_page buddy with
      | Some pfn -> Memguard_vmm.Buddy.free_page buddy pfn
      | None -> assert false)

let bench_ssh_connection level =
  let sys = System.create ~num_pages:2048 ~seed:2 ~noise:false ~level () in
  let srv = System.start_sshd sys in
  let rng = System.rng sys in
  Staged.stage (fun () ->
      let conn = Sshd.open_connection srv rng in
      Sshd.transfer srv conn rng ~kib:4;
      Sshd.close_connection srv conn)

let bench_apache_request level =
  let sys = System.create ~num_pages:2048 ~seed:3 ~noise:false ~level () in
  let srv = System.start_apache sys in
  let rng = System.rng sys in
  Staged.stage (fun () ->
      match Apache.open_connection srv rng with
      | Some conn ->
        Apache.serve srv conn rng ~kib:8;
        Apache.close_connection srv conn
      | None -> assert false)

let bench_key_load level =
  let sys = System.create ~num_pages:2048 ~seed:4 ~noise:false ~level () in
  let k = System.kernel sys in
  let p = Kernel.spawn k ~name:"loader" in
  let mode = Protection.ssl_mode_patched_app level in
  let nocache = Protection.nocache level in
  Staged.stage (fun () ->
      let rsa = Ssl.load_private_key k p ~path:System.key_path ~nocache mode in
      Sim_rsa.clear_free k p rsa)

let bench_scan () =
  let sys = System.create ~num_pages:2048 ~seed:5 ~level:Protection.Unprotected () in
  let patterns = System.patterns sys in
  let k = System.kernel sys in
  Staged.stage (fun () -> ignore (Scanner.scan k ~patterns))

let bench_mkdir_leak () =
  let config = { Kernel.default_config with num_pages = 256 } in
  let k = Kernel.create ~config () in
  Staged.stage (fun () ->
      ignore (Kernel.ext2_mkdir_leak k);
      Kernel.ext2_unmount k)

let bench_modpow bits =
  let rng = Prng.of_int 17 in
  let key = Rsa.generate rng ~bits in
  let c = Bn.random_below rng key.Rsa.n in
  Staged.stage (fun () -> ignore (Rsa.decrypt_raw key c))

let run_micro () =
  section "Bechamel micro-benchmarks (ns per operation, OLS fit)";
  let tests =
    Test.make_grouped ~name:"memguard"
      [ Test.make ~name:"fig8/ssh_connection/unprotected"
          (bench_ssh_connection Protection.Unprotected);
        Test.make ~name:"fig8/ssh_connection/integrated"
          (bench_ssh_connection Protection.Integrated);
        Test.make ~name:"fig19_20/apache_request/unprotected"
          (bench_apache_request Protection.Unprotected);
        Test.make ~name:"fig19_20/apache_request/integrated"
          (bench_apache_request Protection.Integrated);
        Test.make ~name:"rsa_private_op/vanilla" (bench_rsa_op Protection.Unprotected);
        Test.make ~name:"rsa_private_op/aligned" (bench_rsa_op Protection.Integrated);
        Test.make ~name:"page_alloc_free/vanilla" (bench_page_alloc ~zero:false);
        Test.make ~name:"page_alloc_free/zero_on_free" (bench_page_alloc ~zero:true);
        Test.make ~name:"key_load/vanilla" (bench_key_load Protection.Unprotected);
        Test.make ~name:"key_load/hardened_nocache" (bench_key_load Protection.Integrated);
        Test.make ~name:"scanmemory/8MiB_4patterns" (bench_scan ());
        Test.make ~name:"ext2_mkdir_leak" (bench_mkdir_leak ());
        Test.make ~name:"bn_modpow/512" (bench_modpow 512);
        Test.make ~name:"bn_modpow/1024" (bench_modpow 1024);
        Test.make ~name:"aes128_cbc/1KiB"
          (let key = String.init 16 Char.chr and iv = String.make 16 'v' in
           let plain = String.make 1024 'p' in
           Staged.stage (fun () -> ignore (Memguard_crypto.Aes.cbc_encrypt ~key ~iv plain)));
        Test.make ~name:"md5/1KiB"
          (let data = String.make 1024 'm' in
           Staged.stage (fun () -> ignore (Memguard_crypto.Md5.digest data)));
        Test.make ~name:"proto/ssh_kex_handshake"
          (let sys = System.create ~num_pages:1024 ~seed:31 ~noise:false ~level:Protection.Unprotected () in
           let kk = System.kernel sys in
           let p = Kernel.spawn kk ~name:"kex" in
           let rsa = Ssl.load_private_key kk p ~path:System.key_path Ssl.Vanilla in
           let rng = Prng.of_int 32 in
           Staged.stage (fun () ->
               let s = Memguard_proto.Ssh_kex.server_handshake rng kk p ~host_key:rsa () in
               Memguard_proto.Ssh_kex.close kk p s));
        Test.make ~name:"proto/tls_handshake"
          (let sys = System.create ~num_pages:1024 ~seed:33 ~noise:false ~level:Protection.Unprotected () in
           let kk = System.kernel sys in
           let p = Kernel.spawn kk ~name:"tls" in
           let rsa = Ssl.load_private_key kk p ~path:System.key_path Ssl.Vanilla in
           let rng = Prng.of_int 34 in
           Staged.stage (fun () ->
               let s = Memguard_proto.Tls_rsa.server_handshake rng kk p ~cert_key:rsa in
               Memguard_proto.Tls_rsa.close kk p s));
        Test.make ~name:"dsa_sign/256"
          (let rng = Prng.of_int 21 in
           let params = Memguard_crypto.Dsa.generate_params rng ~pbits:256 ~qbits:96 in
           let dkey = Memguard_crypto.Dsa.generate rng params in
           let msg = Bn.of_int 424242 in
           Staged.stage (fun () -> ignore (Memguard_crypto.Dsa.sign rng dkey msg)))
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Format.printf "%-52s %14s %8s@." "benchmark" "ns/op" "r^2";
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
      Format.printf "%-52s %14.1f %8.3f@." name est r2)
    (List.sort compare rows)

let () =
  let args = Array.to_list Sys.argv in
  let skip_figures = List.mem "--skip-figures" args in
  let skip_micro = List.mem "--skip-micro" args in
  let json = List.mem "--json" args in
  let chaos = List.mem "--chaos" args in
  let arg_value flag =
    let rec go = function
      | a :: v :: _ when String.equal a flag -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let tolerance =
    match arg_value "--tolerance" with Some s -> int_of_string s | None -> 15
  in
  Format.printf
    "memguard benchmark harness — Harrison & Xu, DSN'07 reproduction@.\
     (shapes, not absolute values, are the comparison target; see EXPERIMENTS.md)@.";
  match (arg_value "--check", arg_value "--baseline") with
  | Some path, _ -> check_baseline path ~tolerance
  | None, Some path -> write_baseline path
  | None, None ->
  if json then scan_engine_bench ()
  else if chaos then chaos_bench ()
  else begin
    if not skip_figures then begin
      figures ();
      chaos_bench ()
    end;
    if not skip_micro then run_micro ()
  end;
  Format.printf "@.done.@."
